//! The unified execution engine: owns the configuration, executes
//! Look–Compute–Move cycles through **one** stepping pipeline
//! ([`Engine::step`]) and enforces the model's rules (instantaneous moves,
//! exclusivity when required, pending moves under asynchrony).
//!
//! Every way of advancing a simulation — an atomic cycle, a semi-synchronous
//! round, a split Look or Execute under the asynchronous adversary — is a
//! [`SchedulerStep`] applied by [`Engine::step`]; there are no other entry
//! points.  Observation is composable rather than hard-wired: `step` drives
//! any [`Monitor`] (look/move/step hooks), and [`Engine::run`] loops
//! scheduler → step → monitor until a stop condition holds.

use rr_ring::{Configuration, Direction, NodeId, Ring, View};
use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::fault::{CorruptionKind, FaultEvent, FaultModel};
use crate::leap::{LeapPlan, LeapRecord};
use crate::monitor::Monitor;
use crate::packed::{self, PackedRobot, PackedState};
use crate::protocol::{Decision, Protocol, ViewIndex};
use crate::robot::{Phase, RobotId, RobotState};
use crate::scheduler::{Scheduler, SchedulerStep, SchedulerView};
use crate::snapshot::{MultiplicityCapability, Snapshot};
use crate::trace::{Event, Trace, TraceMode};

/// Process-wide count of engine advancements (debug builds only).
#[cfg(debug_assertions)]
static STEP_PROBE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A process-wide count of every [`Engine::step`] and [`Engine::leap`]
/// invocation across **all** engines, maintained only in debug builds
/// (always 0 in release, where the hot path stays untouched).
///
/// This exists for one kind of test: proving that a code path performed
/// *zero* engine work — e.g. that a sweep served from the content-addressed
/// result cache never touched an engine.  Sample it before and after the
/// operation and assert the delta.
#[must_use]
pub fn debug_step_probe() -> u64 {
    #[cfg(debug_assertions)]
    {
        STEP_PROBE.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

#[inline]
fn bump_step_probe() {
    #[cfg(debug_assertions)]
    STEP_PROBE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

/// Which global direction is presented as `views[0]` of a snapshot.
///
/// Correct protocols must be insensitive to this; the option exists so tests
/// can verify that insensitivity and so the adversary can be as nasty as the
/// model allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ViewOrder {
    /// Always present the clockwise view first (deterministic default).
    #[default]
    CwFirst,
    /// Always present the counter-clockwise view first.
    CcwFirst,
    /// Alternate between the two on successive Look operations.
    Alternating,
}

/// Which implementation the Look phase uses to materialize snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LookPath {
    /// O(k) and allocation-free: both views (and the `Global` multiplicity
    /// flags) are read off the configuration's incrementally maintained
    /// occupancy cycle into engine-owned scratch buffers
    /// ([`Snapshot::capture_into`]).  The default.
    #[default]
    Incremental,
    /// The pre-incremental pipeline — O(n) ring scans and two heap
    /// allocations per Look ([`Snapshot::capture_scan`]).  Observable
    /// behaviour is identical; this exists so the E12 throughput experiment
    /// can measure the incremental pipeline against a live baseline.
    ScanBaseline,
}

/// Which stepping strategy the engine uses (mirrors [`LookPath`] one level
/// up: where `LookPath` picks how one Look is materialized, `StepPath` picks
/// whether whole rounds may be served from a protocol leap certificate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum StepPath {
    /// Every scheduler step runs the full Look–Compute–Move pipeline.  The
    /// default, and the reference semantics.
    #[default]
    StepBaseline,
    /// Round leaping: while a [`Protocol::leap_plan`] certificate is valid,
    /// `SsyncRound` steps replay the certified decisions without the
    /// Look/Compute work (identical observable behaviour, every scheduler),
    /// and [`Engine::run`] under a round-uniform scheduler batches whole
    /// rounds via [`Engine::leap`].  Steps the certificate does not cover —
    /// including every asynchronous Look/Execute step, where pending
    /// decisions can branch — fall back to baseline stepping.
    Leap,
}

/// Options controlling an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineOptions {
    /// The multiplicity-detection capability granted to the robots.
    pub capability: MultiplicityCapability,
    /// Whether a move onto an occupied node is a fatal error (true for the
    /// exclusive tasks, false for gathering).
    pub enforce_exclusivity: bool,
    /// Whether to record an event [`Trace`] (disabled by default: hot loops
    /// skip event construction entirely).
    pub trace: TraceMode,
    /// Snapshot view ordering policy.
    pub view_order: ViewOrder,
    /// Look-phase implementation (incremental O(k) by default).
    pub look_path: LookPath,
    /// Stepping strategy (baseline round-by-round by default).
    pub step_path: StepPath,
}

/// Former name of [`EngineOptions`], kept for continuity.
pub type SimulatorOptions = EngineOptions;

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            capability: MultiplicityCapability::None,
            enforce_exclusivity: true,
            trace: TraceMode::Disabled,
            view_order: ViewOrder::CwFirst,
            look_path: LookPath::Incremental,
            step_path: StepPath::StepBaseline,
        }
    }
}

impl EngineOptions {
    /// Options suitable for a given protocol: capability and exclusivity are
    /// taken from the protocol's declaration.
    #[must_use]
    pub fn for_protocol<P: Protocol + ?Sized>(protocol: &P) -> Self {
        EngineOptions {
            capability: protocol.capability(),
            enforce_exclusivity: protocol.requires_exclusivity(),
            ..EngineOptions::default()
        }
    }

    /// Enables trace recording.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.trace = TraceMode::Recording;
        self
    }

    /// Sets the view ordering policy.
    #[must_use]
    pub fn with_view_order(mut self, order: ViewOrder) -> Self {
        self.view_order = order;
        self
    }

    /// Sets the Look-phase implementation.
    #[must_use]
    pub fn with_look_path(mut self, path: LookPath) -> Self {
        self.look_path = path;
        self
    }

    /// Sets the stepping strategy.
    #[must_use]
    pub fn with_step_path(mut self, path: StepPath) -> Self {
        self.step_path = path;
        self
    }
}

/// Record of one executed move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveRecord {
    /// The robot that moved.
    pub robot: RobotId,
    /// Node it left.
    pub from: NodeId,
    /// Node it reached.
    pub to: NodeId,
    /// Global step counter at which the move completed.
    pub step: u64,
}

/// What one application of [`Engine::step`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepReport {
    /// Moves executed by this step, in execution order.
    pub moves: Vec<MoveRecord>,
    /// Number of *fresh* Look + Compute phases performed (pending decisions
    /// that were merely re-confirmed do not count).
    pub looks: u32,
    /// Number of idle decisions completed (robot activated, chose to stay).
    pub idles: u32,
}

impl StepReport {
    /// Whether any robot moved during this step.
    #[must_use]
    pub fn moved(&self) -> bool {
        !self.moves.is_empty()
    }
}

/// Why an [`Engine::run`] loop stopped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The user-supplied stop condition became true.
    ConditionMet,
    /// The step budget was exhausted before the stop condition held.
    StepBudgetExhausted,
    /// The simulation failed (e.g. an exclusivity violation).
    Failed(SimError),
}

/// Summary of an [`Engine::run`] loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// Why the loop stopped.
    pub outcome: RunOutcome,
    /// Number of scheduler steps executed.
    pub steps: u64,
    /// Number of robot moves executed.
    pub moves: u64,
}

impl RunReport {
    /// Whether the run stopped because the stop condition was met.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        matches!(self.outcome, RunOutcome::ConditionMet)
    }
}

/// A saved execution state of an [`Engine`]: the configuration, the per-robot
/// bookkeeping and the step counters — everything [`Engine::step`] reads or
/// writes except the protocol, the options and the trace.
///
/// Produced by [`Engine::save_state`] and consumed by
/// [`Engine::restore_state`]; this is the branch-and-bound primitive the
/// exhaustive model checker (`rr_checker::explore`) is built on: save, apply
/// one frontier step, record the successor, restore, apply the next.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineState {
    config: Configuration,
    robots: Vec<RobotState>,
    step: u64,
    moves: u64,
    looks: u64,
}

impl EngineState {
    /// The saved configuration.
    #[must_use]
    pub fn configuration(&self) -> &Configuration {
        &self.config
    }

    /// The saved per-robot states.
    #[must_use]
    pub fn robots(&self) -> &[RobotState] {
        &self.robots
    }

    /// Exact behavioural identity of the state: the occupancy counts plus
    /// each robot's `(node, phase)`, *excluding* the monotonically growing
    /// step/move/look counters (two states differing only in those counters
    /// behave identically under every future schedule, provided the engine's
    /// view order is not [`ViewOrder::Alternating`]).
    ///
    /// This is the hash key for concrete-state model checking, where robot
    /// identities must be preserved (per-robot fairness is not invariant
    /// under relabeling).
    #[must_use]
    pub fn exact_key(&self) -> Vec<u64> {
        let ring = self.config.ring();
        let mut key = Vec::with_capacity(1 + self.robots.len());
        key.push(ring.len() as u64);
        for r in &self.robots {
            let phase = match r.phase {
                Phase::Ready => 0u64,
                Phase::IdlePending => 1,
                Phase::MovePending { target } => {
                    if ring.neighbor(r.node, Direction::Cw) == target {
                        2
                    } else {
                        3
                    }
                }
            };
            key.push((r.node as u64) << 2 | phase);
        }
        key
    }

    /// Canonical behavioural identity of the state *up to ring automorphism
    /// and robot relabeling*: the lexicographically smallest, over all `2n`
    /// rotations/reflections of the ring, of the per-node encoded word
    /// `(robots ready, idle-pending, move-pending-cw, move-pending-ccw)`.
    ///
    /// Two engine states with equal canonical keys are isomorphic: some ring
    /// automorphism maps one onto the other (reflections swap the cw/ccw
    /// pending-move directions, which the encoding accounts for).  The
    /// minimization reuses the Booth least-rotation machinery of
    /// [`View::min_rotation`] on the encoded word — one O(n) scan for the
    /// word and one for its reflection, exactly like `View::supermin`.
    ///
    /// This quotient is sound for reachability/safety questions (a state is
    /// reachable iff an isomorphic one is); it deliberately forgets robot
    /// identities, so per-robot fairness arguments must use
    /// [`EngineState::exact_key`] instead.
    ///
    /// # Panics
    ///
    /// Panics if more than 15 robots share a node and phase (the per-node
    /// encoding packs each phase count into 4 bits; model-checked instances
    /// are far smaller).
    #[must_use]
    pub fn canonical_key(&self) -> Vec<usize> {
        let ring = self.config.ring();
        let n = ring.len();
        let mut ready = vec![0usize; n];
        let mut idle = vec![0usize; n];
        let mut pend_cw = vec![0usize; n];
        let mut pend_ccw = vec![0usize; n];
        for r in &self.robots {
            match r.phase {
                Phase::Ready => ready[r.node] += 1,
                Phase::IdlePending => idle[r.node] += 1,
                Phase::MovePending { target } => {
                    if ring.neighbor(r.node, Direction::Cw) == target {
                        pend_cw[r.node] += 1;
                    } else {
                        pend_ccw[r.node] += 1;
                    }
                }
            }
        }
        let enc = |v: usize, cw: &[usize], ccw: &[usize]| {
            assert!(
                ready[v] < 16 && idle[v] < 16 && cw[v] < 16 && ccw[v] < 16,
                "canonical_key packs per-node phase counts into 4 bits"
            );
            ready[v] | idle[v] << 4 | cw[v] << 8 | ccw[v] << 12
        };
        // Forward reading of the ring, and the reflection through node 0
        // (v ↦ n - v mod n).  All 2n automorphisms are rotations of one of
        // the two words; reflections swap the cw/ccw pending directions.
        let forward: Vec<usize> = (0..n).map(|v| enc(v, &pend_cw, &pend_ccw)).collect();
        let reflected: Vec<usize> = (0..n)
            .map(|v| enc((n - v) % n, &pend_ccw, &pend_cw))
            .collect();
        let a = View::new(forward).min_rotation();
        let b = View::new(reflected).min_rotation();
        a.min(b).gaps().to_vec()
    }

    /// Bit-packs this state into a single small allocation; the exact
    /// inverse is [`Engine::restore_packed`], which reproduces the state
    /// **byte for byte** (configuration, per-robot phases *and* the monotone
    /// counters).  See [`crate::packed`] for the format.
    #[must_use]
    pub fn pack(&self) -> PackedState {
        let n = self.config.ring().len();
        packed::encode(
            n,
            self.step,
            self.moves,
            self.looks,
            self.robots.iter().map(|r| PackedRobot {
                node: r.node,
                phase: packed::phase_code(n, r.node, r.phase),
                cycles: r.cycles,
                moves: r.moves,
            }),
        )
    }
}

/// A memo of Look decisions, keyed by the packed per-node occupancy counts
/// and the observing node.
///
/// Soundness: an oblivious protocol's decision is a pure function of the
/// robot's [`Snapshot`], and for a *fixed* view-order policy and capability
/// the snapshot is a pure function of `(configuration, node)` — so caching
/// the decision changes nothing observable (counters, trace events, monitor
/// hooks all fire identically).  The exhaustive model checker, which
/// revisits the same configurations along vast numbers of interleavings, is
/// the intended customer.  The memo stays valid across
/// `save_state`/`restore_state` excursions and is dropped on
/// [`Engine::reset`] (a reset may change the protocol or the options).
#[derive(Debug, Clone, Default)]
struct LookMemo {
    enabled: bool,
    /// Dense table for exclusive configurations on rings with
    /// `n ≤ DENSE_MEMO_N` nodes, indexed `occupancy_bitmask * n + node`:
    /// 0 = not yet computed, otherwise the encoded decision + 1.  Allocated
    /// lazily on first use (≤ `2^12 · 12` bytes).
    dense: Vec<u8>,
    map: std::collections::HashMap<(u64, u32), Decision, crate::packed::SigHashBuilder>,
}

/// Largest ring size served by the dense memo table.
///
/// The table is `2^n · n` bytes — the cap is what keeps `enable_look_memo`
/// from being a memory bomb on larger rings (`n = 12` tops out at 48 KiB;
/// `n = 26` would already be 1.7 GiB).  Exclusive configurations above the
/// cap fall back to the sparse hash map like everything else; above
/// [`SPARSE_MEMO_N`] the memo is bypassed entirely (the per-node counts no
/// longer pack into the 64-bit key).
const DENSE_MEMO_N: usize = 12;

/// Largest ring size served by the sparse memo map (counts packed 4 bits per
/// node into a `u64`).
const SPARSE_MEMO_N: usize = 16;

/// How a configuration is presented to the memo.
enum MemoKey {
    /// Exclusive occupancy on a small ring: a direct index into the dense
    /// table.
    Dense(usize),
    /// General per-node counts packed 4 bits each: a hash-map key.
    Sparse(u64),
    /// Instance too large for either encoding; memo bypassed.
    None,
}

/// Classifies the configuration for the memo (see [`MemoKey`]).  O(k): both
/// encodings are read off the configuration's incremental occupancy cycle
/// (and its O(1) exclusivity counter) instead of re-scanning all `n` nodes;
/// the produced key values are identical to the historical full-occupancy
/// re-hash.
fn memo_key(config: &Configuration, node: NodeId) -> MemoKey {
    let n = config.n();
    let anchor = config.occupied_anchor();
    if n <= DENSE_MEMO_N && config.is_exclusive() {
        let mut mask = 0usize;
        for v in config.occupied_cycle(anchor, Direction::Cw) {
            mask |= 1 << v;
        }
        return MemoKey::Dense(mask * n + node);
    }
    if n > SPARSE_MEMO_N {
        return MemoKey::None;
    }
    let mut packed = 0u64;
    for v in config.occupied_cycle(anchor, Direction::Cw) {
        let c = config.count_at(v);
        if c > 15 {
            return MemoKey::None;
        }
        packed |= u64::from(c) << (4 * v);
    }
    MemoKey::Sparse(packed)
}

/// Encodes a decision into the dense table's non-zero byte range.
fn encode_decision(decision: Decision) -> u8 {
    match decision {
        Decision::Idle => 1,
        Decision::Move(ViewIndex::First) => 2,
        Decision::Move(ViewIndex::Second) => 3,
    }
}

fn decode_decision(byte: u8) -> Decision {
    match byte {
        1 => Decision::Idle,
        2 => Decision::Move(ViewIndex::First),
        3 => Decision::Move(ViewIndex::Second),
        _ => unreachable!("dense memo byte"),
    }
}

/// Engine-side state of the round-leaping mode ([`StepPath::Leap`]): the
/// current certificate, its per-robot projection, and the refresh
/// book-keeping.  All buffers are reused, so steady-state leaping (refresh
/// included) allocates nothing after warm-up.
#[derive(Debug, Clone)]
struct LeapState {
    /// The protocol's certificate buffer (per-node velocities + horizon).
    plan: LeapPlan,
    /// Per-robot velocity (indexed by robot id): robots carry their node's
    /// planned velocity for the whole horizon, even as they relocate.
    dirs: Vec<i8>,
    /// Per-node scratch used to translate the plan's node velocities into
    /// robot velocities at refresh time (zeroed again afterwards).
    node_dirs: Vec<i8>,
    /// Rounds of validity left.  Counted in executed mover moves for
    /// single-mover (interleaving-robust) plans, in full rounds otherwise;
    /// `u64::MAX` means forever.
    left: u64,
    /// Number of *robots* that move each round under the plan.  Plans with
    /// more than one mover are only valid for full-activation rounds.
    movers: u32,
    /// Whether `plan`/`dirs`/`left` currently describe the configuration.
    valid: bool,
    /// Whether the configuration changed since the last refresh attempt (a
    /// failed attempt clears this too: same configuration, same outcome).
    dirty: bool,
}

impl Default for LeapState {
    fn default() -> Self {
        LeapState {
            plan: LeapPlan::default(),
            dirs: Vec::new(),
            node_dirs: Vec::new(),
            left: 0,
            movers: 0,
            valid: false,
            dirty: true,
        }
    }
}

impl LeapState {
    /// Drops the current certificate and schedules a refresh attempt.
    fn invalidate(&mut self) {
        self.valid = false;
        self.dirty = true;
    }
}

/// Engine-side state of the fault-injection layer: the armed model plus the
/// once-only bookkeeping for the crash event.  Default-constructed it is
/// [`FaultModel::None`], and the stepping pipeline's only extra cost is one
/// discriminant check per scheduler step — the fault-free engine stays
/// byte-identical to the pre-fault engine (pinned by
/// `crates/corda/tests/fault_lockstep.rs`).
#[derive(Debug, Clone, Default)]
struct FaultState {
    /// The armed fault schedule.
    model: FaultModel,
    /// Whether the crash-stop fault already emitted its once-only
    /// [`Event::FaultCrash`] / [`Monitor::on_fault`] notification.
    crash_fired: bool,
}

/// The Look–Compute–Move execution engine.
///
/// One `Engine` owns one run: the protocol, the evolving configuration, the
/// per-robot bookkeeping (pending decisions, cycle counts) and the optional
/// event trace.  It is advanced exclusively through [`Engine::step`].
#[derive(Debug, Clone)]
pub struct Engine<P> {
    protocol: P,
    ring: Ring,
    config: Configuration,
    robots: Vec<RobotState>,
    options: EngineOptions,
    trace: Trace,
    memo: LookMemo,
    /// Engine-owned scratch snapshot the incremental Look pipeline fills in
    /// place: after warm-up, `look_compute` performs zero heap allocations
    /// on the memo-miss path.
    scratch: Snapshot,
    /// Round-leaping state (only consulted in [`StepPath::Leap`] mode).
    leap: LeapState,
    /// Fault-injection state ([`FaultModel::None`] unless armed).
    fault: FaultState,
    step: u64,
    moves: u64,
    looks: u64,
}

/// Former name of [`Engine`], kept for continuity.
pub type Simulator<P> = Engine<P>;

impl<P: Protocol> Engine<P> {
    /// Creates an engine for `protocol` starting from `initial`.
    ///
    /// One robot is created per unit of multiplicity of the initial
    /// configuration; robots on the same node receive consecutive ids.
    pub fn new(
        protocol: P,
        initial: Configuration,
        options: EngineOptions,
    ) -> Result<Self, SimError> {
        let mut robots = Vec::with_capacity(initial.num_robots());
        Self::place_robots(&mut robots, &initial, options)?;
        Ok(Engine {
            protocol,
            ring: initial.ring(),
            config: initial,
            robots,
            options,
            trace: Trace::for_mode(options.trace),
            memo: LookMemo::default(),
            scratch: Snapshot::empty(),
            leap: LeapState::default(),
            fault: FaultState::default(),
            step: 0,
            moves: 0,
            looks: 0,
        })
    }

    /// Arms (or, with [`FaultModel::None`], disarms) a fault schedule on
    /// this engine.
    ///
    /// The model is *configuration*, not execution state: it survives
    /// [`Engine::save_state`]/[`Engine::restore_state`] excursions (like the
    /// protocol and the options) and is cleared by [`Engine::reset`].
    /// Arming any fault also invalidates the round-leap certificate, and
    /// [`Engine::leap`]/the `SsyncRound` fast path refuse to serve while a
    /// fault is armed — a crash mid-horizon would falsify the memoized
    /// velocities, so faulted runs always take the baseline
    /// Look–Compute–Move pipeline (the `leap × fault` regression tests pin
    /// the fallback).
    pub fn arm_fault(&mut self, model: FaultModel) {
        self.fault.model = model;
        self.fault.crash_fired = false;
        self.leap.invalidate();
    }

    /// The currently armed fault schedule ([`FaultModel::None`] by default).
    #[must_use]
    pub fn fault_model(&self) -> FaultModel {
        self.fault.model
    }

    /// Enables the Look-decision memo: identical observable behaviour,
    /// `compute` evaluated once per `(configuration, node)` pair instead of
    /// once per Look (see the `LookMemo` internals for the soundness
    /// argument).  Dropped again by [`Engine::reset`].
    ///
    /// Storage is bounded: exclusive configurations on rings with
    /// `n ≤ 12` get a dense `2^n · n`-byte table (≤ 48 KiB), anything else
    /// up to `n ≤ 16` goes to a sparse hash map, and larger instances bypass
    /// the memo entirely — enabling it is never a memory hazard.
    ///
    /// # Panics
    ///
    /// Panics under [`ViewOrder::Alternating`], where the snapshot is *not*
    /// a pure function of `(configuration, node)`.
    pub fn enable_look_memo(&mut self) {
        assert!(
            self.options.view_order != ViewOrder::Alternating,
            "look memo is unsound under an alternating view order"
        );
        self.memo.enabled = true;
    }

    /// Validates `initial` against `options` and (re)fills `robots` with one
    /// robot per unit of multiplicity.
    fn place_robots(
        robots: &mut Vec<RobotState>,
        initial: &Configuration,
        options: EngineOptions,
    ) -> Result<(), SimError> {
        if options.enforce_exclusivity && !initial.is_exclusive() {
            return Err(SimError::BadInitialConfiguration {
                reason: "exclusivity is required but the initial configuration has a multiplicity"
                    .to_string(),
            });
        }
        robots.clear();
        for v in initial.occupied_nodes() {
            for _ in 0..initial.count_at(v) {
                robots.push(RobotState::new(v));
            }
        }
        if robots.is_empty() {
            return Err(SimError::BadInitialConfiguration {
                reason: "no robot in the initial configuration".to_string(),
            });
        }
        Ok(())
    }

    /// Rewinds this engine to a fresh run of `protocol` from `initial`,
    /// reusing the robot vector, trace buffer and configuration storage of
    /// the previous run.
    ///
    /// Semantically identical to replacing the engine with
    /// `Engine::new(protocol, initial.clone(), options)?`, but without the
    /// per-run allocations — this is what makes batch sweeps reuse one engine
    /// per worker.  On error the engine is left in an unspecified (but safe)
    /// state and must be reset again before use.
    pub fn reset(
        &mut self,
        protocol: P,
        initial: &Configuration,
        options: EngineOptions,
    ) -> Result<(), SimError> {
        Self::place_robots(&mut self.robots, initial, options)?;
        self.ring = initial.ring();
        self.config.clone_from(initial);
        self.protocol = protocol;
        self.options = options;
        self.trace.reset(options.trace);
        // Memoized decisions are *not* carried over: the memo key is the
        // `(configuration, node)` pair but the memoized value also depends
        // on the protocol, the capability, the view order and the Look path,
        // all of which this reset may have replaced.  Dropping the memo (and
        // its enabled flag — callers re-opt-in per run) makes a recycled
        // engine behaviourally indistinguishable from a fresh one, which the
        // `reset_equivalence` suite checks.
        self.memo = LookMemo::default();
        self.leap.invalidate();
        // Fault schedules are per-run adversaries: a recycled engine starts
        // fault-free, like a fresh one (callers re-arm per run).
        self.fault = FaultState::default();
        self.step = 0;
        self.moves = 0;
        self.looks = 0;
        Ok(())
    }

    /// Saves the current execution state (configuration, robot bookkeeping,
    /// step counters) for a later [`Engine::restore_state`].
    ///
    /// The protocol, the options and the trace are **not** part of the saved
    /// state: a save/restore pair brackets a speculative excursion of the
    /// *same* run, which is exactly what an exhaustive state-space search
    /// needs (the trace, if any, keeps accumulating across excursions and is
    /// normally disabled there).
    #[must_use]
    pub fn save_state(&self) -> EngineState {
        EngineState {
            config: self.config.clone(),
            robots: self.robots.clone(),
            step: self.step,
            moves: self.moves,
            looks: self.looks,
        }
    }

    /// Rewinds the engine to a state previously captured with
    /// [`Engine::save_state`], reusing the configuration and robot storage.
    ///
    /// # Panics
    ///
    /// Panics if `state` belongs to a different instance shape (ring size or
    /// robot count mismatch) — states may only be restored into the engine
    /// family they were saved from.
    pub fn restore_state(&mut self, state: &EngineState) {
        assert_eq!(
            state.config.n(),
            self.ring.len(),
            "restore_state: ring size mismatch"
        );
        assert_eq!(
            state.robots.len(),
            self.robots.len(),
            "restore_state: robot count mismatch"
        );
        self.config.clone_from(&state.config);
        self.robots.clone_from(&state.robots);
        self.leap.invalidate();
        self.step = state.step;
        self.moves = state.moves;
        self.looks = state.looks;
    }

    /// Like [`Engine::save_state`], but reuses the storage of `state`
    /// instead of allocating — the zero-allocation save the model checker's
    /// inner loop runs on.
    pub fn save_state_into(&self, state: &mut EngineState) {
        state.config.clone_from(&self.config);
        state.robots.clone_from(&self.robots);
        state.step = self.step;
        state.moves = self.moves;
        state.looks = self.looks;
    }

    /// Bit-packs the current execution state directly from the live engine:
    /// identical bytes to `self.save_state().pack()`, without materializing
    /// the intermediate [`EngineState`].
    #[must_use]
    pub fn pack_state(&self) -> PackedState {
        let n = self.ring.len();
        packed::encode(
            n,
            self.step,
            self.moves,
            self.looks,
            self.robots.iter().map(|r| PackedRobot {
                node: r.node,
                phase: packed::phase_code(n, r.node, r.phase),
                cycles: r.cycles,
                moves: r.moves,
            }),
        )
    }

    /// Bit-packs the **behavioural projection** of the current state: like
    /// [`Engine::pack_state`] but with every monotone counter (global
    /// step/move/look and per-robot cycle/move counts) stored as zero, which
    /// shrinks the packed words to the header plus `⌈log₂ n⌉ + 2` bits per
    /// robot.
    ///
    /// Restoring it reproduces the configuration and every robot phase
    /// exactly, with counters reset — the canonical representative of the
    /// state's behaviour class ([`PackedState::behavior_sig`] equality).
    /// Under a non-[`ViewOrder::Alternating`] view order the counters never
    /// influence behaviour, so the model checker stores these instead of
    /// full states: the old checker kept whatever counter values the first
    /// discovery happened to carry (a search artifact); the projection is
    /// both smaller and better defined.
    #[must_use]
    pub fn pack_behavior(&self) -> PackedState {
        let n = self.ring.len();
        packed::encode(
            n,
            0,
            0,
            0,
            self.robots.iter().map(|r| PackedRobot {
                node: r.node,
                phase: packed::phase_code(n, r.node, r.phase),
                cycles: 0,
                moves: 0,
            }),
        )
    }

    /// The behavioural signature of the current state, straight from the
    /// live engine: identical to `self.pack_state().behavior_sig()` without
    /// touching the codec (see [`PackedState::behavior_sig`]).
    #[must_use]
    pub fn behavior_sig(&self) -> crate::packed::StateSig {
        let n = self.ring.len();
        packed::behavior_sig_from(
            n,
            self.robots.len(),
            self.robots
                .iter()
                .map(|r| (r.node, packed::phase_code(n, r.node, r.phase))),
        )
    }

    /// The canonical (symmetry-quotient) signature of the current state,
    /// straight from the live engine: identical to
    /// `self.pack_state().canonical_sig()` (see
    /// [`PackedState::canonical_sig`] for the encoding and its bounds).
    #[must_use]
    pub fn canonical_sig(&self) -> crate::packed::StateSig {
        let n = self.ring.len();
        packed::canonical_sig_from(
            n,
            self.robots.len(),
            self.robots
                .iter()
                .map(|r| (r.node, packed::phase_code(n, r.node, r.phase))),
        )
    }

    /// Rewinds the engine to a state previously packed with
    /// [`EngineState::pack`] / [`Engine::pack_state`], reusing the
    /// configuration and robot storage.  The restored state is byte-identical
    /// to the one that was packed: `engine.restore_packed(&s.pack())`
    /// followed by `engine.save_state()` yields `s` again, exactly.
    ///
    /// # Panics
    ///
    /// Panics if `packed` belongs to a different instance shape (ring size or
    /// robot count mismatch) — like [`Engine::restore_state`], packed states
    /// may only be restored into the engine family they were saved from.
    pub fn restore_packed(&mut self, packed: &PackedState) {
        let mut decoder = packed::Decoder::new(packed);
        assert_eq!(
            decoder.n,
            self.ring.len(),
            "restore_packed: ring size mismatch"
        );
        assert_eq!(
            decoder.k,
            self.robots.len(),
            "restore_packed: robot count mismatch"
        );
        self.step = decoder.step;
        self.moves = decoder.moves;
        self.looks = decoder.looks;
        for robot in &mut self.robots {
            let r = decoder.next_robot();
            robot.node = r.node;
            robot.phase = packed::code_phase(decoder.n, r.node, r.phase);
            robot.cycles = r.cycles;
            robot.moves = r.moves;
        }
        // The occupancy vector is the multiset of robot positions (one robot
        // per unit of multiplicity, an Engine invariant since construction).
        self.config
            .assign_positions(self.robots.iter().map(|r| r.node));
        self.leap.invalidate();
    }

    /// Creates an engine with the options implied by the protocol declaration
    /// (capability + exclusivity).
    pub fn with_default_options(protocol: P, initial: Configuration) -> Result<Self, SimError> {
        let options = EngineOptions::for_protocol(&protocol);
        Engine::new(protocol, initial, options)
    }

    /// The current configuration.
    #[must_use]
    pub fn configuration(&self) -> &Configuration {
        &self.config
    }

    /// The underlying ring.
    #[must_use]
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// The protocol under simulation.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Number of robots.
    #[must_use]
    pub fn num_robots(&self) -> usize {
        self.robots.len()
    }

    /// Per-robot engine state.
    #[must_use]
    pub fn robots(&self) -> &[RobotState] {
        &self.robots
    }

    /// Current node of each robot, indexed by robot id.
    #[must_use]
    pub fn positions(&self) -> Vec<NodeId> {
        self.robots.iter().map(|r| r.node).collect()
    }

    /// Global step counter (incremented once per Look and once per
    /// Move/Idle execution).
    #[must_use]
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Total number of moves executed so far.
    #[must_use]
    pub fn move_count(&self) -> u64 {
        self.moves
    }

    /// Total number of Look operations executed so far.
    #[must_use]
    pub fn look_count(&self) -> u64 {
        self.looks
    }

    /// The recorded trace (empty unless trace recording was enabled).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Engine options.
    #[must_use]
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// A scheduler-facing summary of the current state.
    #[must_use]
    pub fn scheduler_view(&self) -> SchedulerView {
        SchedulerView {
            step: self.step,
            pending: self.robots.iter().map(RobotState::has_pending).collect(),
            pending_moves: self
                .robots
                .iter()
                .map(RobotState::has_pending_move)
                .collect(),
            num_robots: self.robots.len(),
        }
    }

    fn check_robot(&self, robot: RobotId) -> Result<(), SimError> {
        if robot >= self.robots.len() {
            Err(SimError::UnknownRobot {
                robot,
                k: self.robots.len(),
            })
        } else {
            Ok(())
        }
    }

    fn first_direction(&self) -> Direction {
        match self.options.view_order {
            ViewOrder::CwFirst => Direction::Cw,
            ViewOrder::CcwFirst => Direction::Ccw,
            ViewOrder::Alternating => {
                if self.looks.is_multiple_of(2) {
                    Direction::Cw
                } else {
                    Direction::Ccw
                }
            }
        }
    }

    /// Materializes the snapshot at `node` and runs the protocol on it
    /// (memo-miss path of the Look phase).
    ///
    /// On [`LookPath::Incremental`] the snapshot is filled into the
    /// engine-owned scratch buffers — O(k) and, after warm-up, zero heap
    /// allocations; [`LookPath::ScanBaseline`] reproduces the historical
    /// allocating O(n) pipeline for benchmark comparisons.
    fn compute_decision(&mut self, node: NodeId, first_dir: Direction) -> Decision {
        match self.options.look_path {
            LookPath::Incremental => {
                self.scratch
                    .capture_into(&self.config, node, self.options.capability, first_dir);
                self.protocol.compute(&self.scratch)
            }
            LookPath::ScanBaseline => {
                let snapshot =
                    Snapshot::capture_scan(&self.config, node, self.options.capability, first_dir);
                self.protocol.compute(&snapshot)
            }
        }
    }

    /// [`Engine::compute_decision`] for a corrupted Look: the snapshot is
    /// captured truthfully by the configured Look path, then perturbed by
    /// [`Snapshot::corrupt`] *before* the protocol sees it.
    fn compute_decision_corrupt(
        &mut self,
        node: NodeId,
        first_dir: Direction,
        kind: CorruptionKind,
    ) -> Decision {
        match self.options.look_path {
            LookPath::Incremental => {
                self.scratch
                    .capture_into(&self.config, node, self.options.capability, first_dir);
                self.scratch.corrupt(kind);
                self.protocol.compute(&self.scratch)
            }
            LookPath::ScanBaseline => {
                let mut snapshot =
                    Snapshot::capture_scan(&self.config, node, self.options.capability, first_dir);
                snapshot.corrupt(kind);
                self.protocol.compute(&snapshot)
            }
        }
    }

    /// Look + Compute phase of one robot (pipeline stage, private).
    ///
    /// Takes a snapshot of the **current** configuration and stores the
    /// resulting pending action.  If the robot already has a pending action
    /// the call leaves it untouched: the CORDA model never lets a robot look
    /// twice without completing its cycle in between.  Returns whether a
    /// fresh Look was performed and the (possibly pre-existing) decision.
    fn look_compute<M: Monitor + ?Sized>(
        &mut self,
        robot: RobotId,
        monitor: &mut M,
    ) -> Result<(bool, Decision), SimError> {
        self.check_robot(robot)?;
        if self.robots[robot].has_pending() {
            // Already computed: report the pending decision without re-looking.
            let decision = match self.robots[robot].phase {
                Phase::MovePending { target } => {
                    let dir =
                        if self.ring.neighbor(self.robots[robot].node, Direction::Cw) == target {
                            ViewIndex::First
                        } else {
                            ViewIndex::Second
                        };
                    Decision::Move(dir)
                }
                Phase::IdlePending => Decision::Idle,
                Phase::Ready => unreachable!("has_pending() checked"),
            };
            return Ok((false, decision));
        }
        let node = self.robots[robot].node;
        let first_dir = self.first_direction();
        // An armed sensor corruption hijacks exactly one fresh Look (matched
        // by its global look ordinal).  The memo is bypassed — neither read
        // nor written — because its key is `(configuration, node)` only,
        // which is unsound in both directions for a snapshot that lies.
        let corruption = self.fault.model.corruption_at(self.looks);
        let key = if self.memo.enabled && corruption.is_none() {
            memo_key(&self.config, node)
        } else {
            MemoKey::None
        };
        let decision = if let Some(kind) = corruption {
            self.compute_decision_corrupt(node, first_dir, kind)
        } else {
            match key {
                MemoKey::Dense(idx) => {
                    if self.memo.dense.is_empty() {
                        self.memo.dense = vec![0; (1 << self.config.n()) * self.config.n()];
                    }
                    match self.memo.dense[idx] {
                        0 => {
                            let decision = self.compute_decision(node, first_dir);
                            self.memo.dense[idx] = encode_decision(decision);
                            decision
                        }
                        byte => decode_decision(byte),
                    }
                }
                MemoKey::Sparse(packed) => {
                    let map_key = (packed, node as u32);
                    if let Some(&decision) = self.memo.map.get(&map_key) {
                        decision
                    } else {
                        let decision = self.compute_decision(node, first_dir);
                        self.memo.map.insert(map_key, decision);
                        decision
                    }
                }
                MemoKey::None => self.compute_decision(node, first_dir),
            }
        };
        self.looks += 1;
        self.step += 1;
        match decision {
            Decision::Idle => {
                self.robots[robot].phase = Phase::IdlePending;
            }
            Decision::Move(idx) => {
                let dir = match idx {
                    ViewIndex::First => first_dir,
                    ViewIndex::Second => first_dir.opposite(),
                };
                let target = self.ring.neighbor(node, dir);
                self.robots[robot].phase = Phase::MovePending { target };
            }
        }
        if let Some(kind) = corruption {
            if self.trace.is_recording() {
                self.trace.push(Event::FaultCorruption {
                    robot,
                    step: self.step,
                    kind,
                });
            }
            monitor.on_fault(
                &FaultEvent::CorruptedLook {
                    robot,
                    step: self.step,
                    kind,
                },
                &self.config,
            );
        }
        if self.trace.is_recording() {
            self.trace.push(Event::Looked {
                robot,
                step: self.step,
                decided_to_move: decision.is_move(),
            });
        }
        monitor.on_look(robot, decision, &self.config);
        Ok((true, decision))
    }

    /// Move phase of one robot (pipeline stage, private).
    ///
    /// Executes the pending action, if any, appending to the step report.
    fn execute_move(&mut self, robot: RobotId, report: &mut StepReport) -> Result<(), SimError> {
        self.check_robot(robot)?;
        match self.robots[robot].phase {
            Phase::Ready => Ok(()),
            Phase::IdlePending => {
                self.step += 1;
                self.robots[robot].phase = Phase::Ready;
                self.robots[robot].cycles += 1;
                if self.trace.is_recording() {
                    self.trace.push(Event::StayedIdle {
                        robot,
                        step: self.step,
                    });
                }
                report.idles += 1;
                Ok(())
            }
            Phase::MovePending { target } => {
                let from = self.robots[robot].node;
                if self.options.enforce_exclusivity && self.config.is_occupied(target) {
                    return Err(SimError::ExclusivityViolation {
                        robot,
                        node: target,
                    });
                }
                self.config
                    .move_robot(from, target)
                    .map_err(|e| SimError::InvalidMove {
                        reason: e.to_string(),
                    })?;
                self.step += 1;
                self.moves += 1;
                self.robots[robot].node = target;
                self.robots[robot].phase = Phase::Ready;
                self.robots[robot].cycles += 1;
                self.robots[robot].moves += 1;
                let record = MoveRecord {
                    robot,
                    from,
                    to: target,
                    step: self.step,
                };
                if self.trace.is_recording() {
                    self.trace.push(Event::Moved {
                        robot,
                        from,
                        to: target,
                        step: self.step,
                    });
                }
                report.moves.push(record);
                Ok(())
            }
        }
    }

    /// Attempts to (re)build the leap certificate for the current
    /// configuration.  Called lazily from the leap entry points only, so
    /// runs that never reach a leapable state (e.g. ASYNC stepping) pay a
    /// single failed refresh per configuration change at most.
    fn refresh_leap_plan(&mut self) {
        self.leap.dirty = false;
        self.leap.valid = false;
        // Alternating view order flips the snapshot orientation every global
        // Look, so per-node decisions are not round-stable: no certificate.
        if self.options.view_order == ViewOrder::Alternating {
            return;
        }
        // A pending robot acted on an older configuration; the plan below
        // only describes fresh Look decisions.
        if self.robots.iter().any(RobotState::has_pending) {
            return;
        }
        let first_dir = self.first_direction();
        self.leap.plan.clear();
        if !self.protocol.leap_plan(
            &self.config,
            first_dir,
            self.options.capability,
            &mut self.leap.plan,
        ) {
            return;
        }
        if self.leap.plan.horizon == 0 {
            return;
        }
        // Project per-node velocities onto robots via the node scratch,
        // zeroing the touched entries again afterwards (O(k), no allocation
        // after the first refresh on a given ring size).
        let n = self.ring.len();
        if self.leap.node_dirs.len() != n {
            self.leap.node_dirs.clear();
            self.leap.node_dirs.resize(n, 0);
        }
        for &(node, vel) in &self.leap.plan.velocities {
            self.leap.node_dirs[node] = vel;
        }
        self.leap.dirs.clear();
        self.leap.dirs.resize(self.robots.len(), 0);
        self.leap.movers = 0;
        for (r, robot) in self.robots.iter().enumerate() {
            let d = self.leap.node_dirs[robot.node];
            self.leap.dirs[r] = d;
            self.leap.movers += u32::from(d != 0);
        }
        for &(node, _) in &self.leap.plan.velocities {
            self.leap.node_dirs[node] = 0;
        }
        self.leap.left = self.leap.plan.horizon;
        self.leap.valid = true;
    }

    /// Fast path for an SSYNC round under [`StepPath::Leap`]: re-derives each
    /// activated robot's decision from the cached certificate instead of
    /// materializing a snapshot, then runs the ordinary execute pipeline.
    ///
    /// Observably identical to the baseline round — same counters, trace
    /// events, monitor calls, reports and errors — because only the
    /// Look+Compute *derivation* is memoized; everything downstream is the
    /// shared code.  Returns `Ok(false)` when the certificate does not cover
    /// this round and the caller must take the baseline path.
    fn try_leap_fast_round<M: Monitor + ?Sized>(
        &mut self,
        robots: &[RobotId],
        monitor: &mut M,
        report: &mut StepReport,
    ) -> Result<bool, SimError> {
        // Leap certificates are not fault-aware: a crash or a corrupted Look
        // mid-horizon would falsify the memoized per-node velocities.  While
        // any fault is armed the fast path declines and the caller single
        // steps (identical outcomes, pinned by the leap × fault tests).
        if self.fault.model.is_armed() {
            return Ok(false);
        }
        if self.leap.dirty {
            self.refresh_leap_plan();
        }
        if !self.leap.valid || self.leap.left == 0 {
            return Ok(false);
        }
        // Multi-mover plans are only certified for full simultaneous rounds;
        // single-mover plans survive arbitrary activation subsets (any
        // subset either moves the walker one step or changes nothing).
        if self.leap.movers > 1 && robots.len() != self.robots.len() {
            return Ok(false);
        }
        if robots
            .iter()
            .any(|&r| r >= self.robots.len() || self.robots[r].has_pending())
        {
            return Ok(false);
        }
        let first_dir = self.first_direction();
        for &r in robots {
            if self.robots[r].has_pending() {
                // Duplicate activation within this round: the baseline would
                // re-report the pending decision without counters or trace.
                continue;
            }
            let node = self.robots[r].node;
            let d = self.leap.dirs[r];
            let (decision, global_dir) = if d == 0 {
                (Decision::Idle, None)
            } else {
                let global = if d > 0 { Direction::Cw } else { Direction::Ccw };
                let idx = if global == first_dir {
                    ViewIndex::First
                } else {
                    ViewIndex::Second
                };
                (Decision::Move(idx), Some(global))
            };
            #[cfg(debug_assertions)]
            {
                let fresh = self.compute_decision(node, first_dir);
                assert_eq!(
                    decision, fresh,
                    "leap certificate disagrees with a fresh Look (robot {r}, node {node})"
                );
            }
            self.looks += 1;
            self.step += 1;
            match global_dir {
                None => self.robots[r].phase = Phase::IdlePending,
                Some(dir) => {
                    let target = self.ring.neighbor(node, dir);
                    self.robots[r].phase = Phase::MovePending { target };
                }
            }
            if self.trace.is_recording() {
                self.trace.push(Event::Looked {
                    robot: r,
                    step: self.step,
                    decided_to_move: decision.is_move(),
                });
            }
            monitor.on_look(r, decision, &self.config);
            report.looks += 1;
        }
        for &r in robots {
            self.execute_move(r, report)?;
        }
        // Burn horizon: single-mover plans count executed walker moves (the
        // certificate is phrased in walker progress), multi-mover plans count
        // full rounds.
        let executed = report.moves.len() as u64;
        if self.leap.movers <= 1 {
            self.leap.left = self.leap.left.saturating_sub(executed);
        } else {
            self.leap.left = self.leap.left.saturating_sub(1);
        }
        if self.leap.left == 0 {
            self.leap.invalidate();
        }
        Ok(true)
    }

    /// Applies as many full synchronous rounds as the leap certificate
    /// covers (capped at `max_rounds`) in one closed-form batch: counters,
    /// robot states and the occupancy index are advanced arithmetically, a
    /// single [`Event::Leaped`] stands in for the per-robot events, and the
    /// monitor receives one aggregate [`Monitor::on_leap`] callback.
    ///
    /// Counter parity with fully-synchronous stepping is exact (`k` looks
    /// and `k` executes per round, i.e. `2k` global steps), so a leaping run
    /// and a stepping run report identical totals.  Returns the number of
    /// rounds applied, or [`None`] when no certificate covers the current
    /// state (pending robots, uncertifiable configuration, exclusivity
    /// enforced against a protocol that does not promise it, or a zero cap).
    pub fn leap<M: Monitor + ?Sized>(&mut self, max_rounds: u64, monitor: &mut M) -> Option<u64> {
        bump_step_probe();
        if max_rounds == 0 {
            return None;
        }
        // Certificates are computed against a fault-free future: refuse to
        // serve while any fault is armed (the run loop falls back to
        // single-stepping, which applies the fault semantics per step).
        if self.fault.model.is_armed() {
            return None;
        }
        if self.leap.dirty {
            self.refresh_leap_plan();
        }
        if !self.leap.valid || self.leap.left == 0 {
            return None;
        }
        if self.robots.iter().any(RobotState::has_pending) {
            return None;
        }
        // Batched application skips the per-move exclusivity check, so it is
        // only sound when the protocol guarantees exclusivity by itself or
        // the caller does not ask for enforcement.
        if self.options.enforce_exclusivity && !self.protocol.requires_exclusivity() {
            return None;
        }
        let rounds = self.leap.left.min(max_rounds);
        let k = self.robots.len() as u64;
        let n = self.ring.len();
        let shift = usize::try_from(rounds % n as u64).expect("shift < n");
        let mut moves = 0u64;
        for (r, robot) in self.robots.iter_mut().enumerate() {
            robot.cycles += rounds;
            let d = self.leap.dirs[r];
            if d != 0 {
                moves += rounds;
                robot.moves += rounds;
                robot.node = if d > 0 {
                    (robot.node + shift) % n
                } else {
                    (robot.node + n - shift) % n
                };
            }
        }
        self.looks += k * rounds;
        self.moves += moves;
        self.step += 2 * k * rounds;
        self.config
            .assign_positions(self.robots.iter().map(|r| r.node));
        debug_assert!(
            !self.options.enforce_exclusivity || self.config.is_exclusive(),
            "leap certificate produced a non-exclusive configuration"
        );
        if self.trace.is_recording() {
            self.trace.push(Event::Leaped {
                rounds,
                moves,
                step: self.step,
            });
        }
        monitor.on_leap(
            &LeapRecord {
                rounds,
                moves,
                looks: k * rounds,
                step: self.step,
            },
            &self.config,
        );
        self.leap.left = self.leap.left.saturating_sub(rounds);
        if self.leap.left == 0 {
            self.leap.invalidate();
        }
        Some(rounds)
    }

    /// **The** stepping pipeline: applies one scheduler step and notifies
    /// `monitor` of everything that happened.
    ///
    /// * [`SchedulerStep::SsyncRound`] — all listed robots Look + Compute on
    ///   the same configuration, then all of them execute their action
    ///   (robots with a pending action keep it; they do not re-look).  With a
    ///   single robot this is an atomic Look–Compute–Move cycle.
    /// * [`SchedulerStep::Look`] — the robot performs only Look + Compute.
    /// * [`SchedulerStep::Execute`] — the robot executes its pending action,
    ///   however stale its snapshot has become (the CORDA pending-move rule).
    ///
    /// Moves within one scheduler step are simultaneous in the model, so the
    /// monitor's `on_move` hook is invoked only after the whole step has been
    /// applied, with the post-step configuration — observers never see a
    /// half-completed round.  Pass `&mut ()` as the monitor to run
    /// unobserved.
    pub fn step<M: Monitor + ?Sized>(
        &mut self,
        step: &SchedulerStep,
        monitor: &mut M,
    ) -> Result<StepReport, SimError> {
        let mut report = StepReport::default();
        self.step_into(step, monitor, &mut report)?;
        Ok(report)
    }

    /// [`Engine::step`] writing into a caller-owned report (cleared first):
    /// reusing one report across steps keeps the move vector's allocation
    /// alive, which is what the model checker's million-edge loops want.
    ///
    /// On `Err` the engine state is identical to what [`Engine::step`] would
    /// leave; the report contents are unspecified.
    pub fn step_into<M: Monitor + ?Sized>(
        &mut self,
        step: &SchedulerStep,
        monitor: &mut M,
        report: &mut StepReport,
    ) -> Result<(), SimError> {
        bump_step_probe();
        report.moves.clear();
        report.looks = 0;
        report.idles = 0;
        // Crash-stop semantics: once the global step counter reaches the
        // scheduled crash step (evaluated at scheduler-step entry), every
        // activation of the victim is suppressed — the scheduler does not
        // know, the engine filters.  `FaultModel::None` costs exactly this
        // one discriminant check.
        if let FaultModel::Crash {
            robot: victim,
            after_step,
        } = self.fault.model
        {
            if self.step >= after_step && Self::step_activates(step, victim) {
                return self.step_into_crashed(step, victim, monitor, report);
            }
        }
        self.step_into_inner(step, monitor, report)
    }

    /// Whether `step` activates `robot` (in any phase).
    fn step_activates(step: &SchedulerStep, robot: RobotId) -> bool {
        match step {
            SchedulerStep::SsyncRound(robots) => robots.contains(&robot),
            SchedulerStep::Look(r) | SchedulerStep::Execute(r) => *r == robot,
        }
    }

    /// Emits the once-only crash notification (trace event + monitor hook)
    /// the first time an activation of the crashed robot is suppressed.
    fn note_crash<M: Monitor + ?Sized>(&mut self, victim: RobotId, monitor: &mut M) {
        if self.fault.crash_fired {
            return;
        }
        self.fault.crash_fired = true;
        if self.trace.is_recording() {
            self.trace.push(Event::FaultCrash {
                robot: victim,
                step: self.step,
            });
        }
        monitor.on_fault(
            &FaultEvent::Crashed {
                robot: victim,
                step: self.step,
            },
            &self.config,
        );
    }

    /// [`Engine::step_into`] for a step that activates the crashed robot:
    /// the victim is filtered out of rounds and its solo steps become
    /// no-ops (its pending action, if any, stays frozen forever).
    fn step_into_crashed<M: Monitor + ?Sized>(
        &mut self,
        step: &SchedulerStep,
        victim: RobotId,
        monitor: &mut M,
        report: &mut StepReport,
    ) -> Result<(), SimError> {
        self.check_robot(victim)?;
        self.note_crash(victim, monitor);
        match step {
            SchedulerStep::SsyncRound(robots) => {
                let alive: Vec<RobotId> = robots.iter().copied().filter(|&r| r != victim).collect();
                self.step_into_inner(&SchedulerStep::SsyncRound(alive), monitor, report)
            }
            SchedulerStep::Look(_) | SchedulerStep::Execute(_) => {
                // The whole step addressed the crashed robot: nothing
                // happens, but the scheduler step still completes and
                // observers see it (with an empty report).
                monitor.on_step(report, &self.config);
                Ok(())
            }
        }
    }

    /// The fault-free stepping pipeline shared by [`Engine::step_into`] and
    /// the crash filter (which re-enters it with the victim removed).
    fn step_into_inner<M: Monitor + ?Sized>(
        &mut self,
        step: &SchedulerStep,
        monitor: &mut M,
        report: &mut StepReport,
    ) -> Result<(), SimError> {
        match step {
            SchedulerStep::SsyncRound(robots) => {
                let fast = self.options.step_path == StepPath::Leap
                    && self.try_leap_fast_round(robots, monitor, report)?;
                if !fast {
                    for &r in robots {
                        if self.look_compute(r, monitor)?.0 {
                            report.looks += 1;
                        }
                    }
                    for &r in robots {
                        self.execute_move(r, report)?;
                    }
                    if report.moved() {
                        self.leap.invalidate();
                    }
                }
            }
            SchedulerStep::Look(robot) => {
                if self.look_compute(*robot, monitor)?.0 {
                    report.looks += 1;
                }
            }
            SchedulerStep::Execute(robot) => {
                self.execute_move(*robot, report)?;
                if report.moved() {
                    self.leap.invalidate();
                }
            }
        }
        for record in &report.moves {
            monitor.on_move(record, &self.config);
        }
        monitor.on_step(report, &self.config);
        Ok(())
    }

    /// Drives the engine with `scheduler` until `stop` returns true or
    /// `max_scheduler_steps` scheduler steps have been applied.
    ///
    /// `monitor` observes every step (pass `&mut ()` for none); `stop` sees
    /// both the engine and the monitor, so stop conditions can be phrased
    /// over observed properties ("three clearings demonstrated") as well as
    /// over engine state ("configuration gathered").
    pub fn run<S, M, F>(
        &mut self,
        scheduler: &mut S,
        monitor: &mut M,
        max_scheduler_steps: u64,
        mut stop: F,
    ) -> RunReport
    where
        S: Scheduler + ?Sized,
        M: Monitor + ?Sized,
        F: FnMut(&Engine<P>, &M) -> bool,
    {
        let mut steps = 0u64;
        let moves_before = self.moves;
        loop {
            if stop(self, monitor) {
                return RunReport {
                    outcome: RunOutcome::ConditionMet,
                    steps,
                    moves: self.moves - moves_before,
                };
            }
            if steps >= max_scheduler_steps {
                return RunReport {
                    outcome: RunOutcome::StepBudgetExhausted,
                    steps,
                    moves: self.moves - moves_before,
                };
            }
            // Round-uniform schedulers issue full SSYNC rounds regardless of
            // the view, so certified rounds can be applied as one batch.  A
            // leap counts as that many scheduler steps; `stop` is checked at
            // leap boundaries only (the certificate guarantees no
            // decision-relevant change strictly inside the leap).
            if self.options.step_path == StepPath::Leap && scheduler.is_round_uniform() {
                if let Some(rounds) = self.leap(max_scheduler_steps - steps, monitor) {
                    steps += rounds;
                    continue;
                }
            }
            let step = scheduler.next(&self.scheduler_view());
            if let Err(e) = self.step(&step, monitor) {
                return RunReport {
                    outcome: RunOutcome::Failed(e),
                    steps,
                    moves: self.moves - moves_before,
                };
            }
            steps += 1;
        }
    }

    /// Convenience wrapper around [`Engine::run`] without a monitor.
    pub fn run_until<S, F>(&mut self, scheduler: &mut S, max_steps: u64, mut stop: F) -> RunReport
    where
        S: Scheduler + ?Sized,
        F: FnMut(&Engine<P>) -> bool,
    {
        self.run(scheduler, &mut (), max_steps, |engine, ()| stop(engine))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::MoveLog;
    use crate::protocol::{GreedyGapWalker, IdleProtocol};
    use crate::scheduler::RoundRobinScheduler;
    use rr_ring::Configuration;

    fn cfg(gaps: &[usize]) -> Configuration {
        Configuration::from_gaps_at_origin(gaps)
    }

    /// One atomic Look–Compute–Move cycle, as a scheduler step.
    fn cycle(robot: RobotId) -> SchedulerStep {
        SchedulerStep::SsyncRound(vec![robot])
    }

    #[test]
    fn construction_places_one_robot_per_unit_of_multiplicity() {
        let ring = Ring::new(8);
        let c = Configuration::from_counts(ring, vec![2, 0, 1, 0, 0, 0, 0, 0]).unwrap();
        let engine = Engine::new(
            IdleProtocol,
            c,
            EngineOptions {
                enforce_exclusivity: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(engine.num_robots(), 3);
        assert_eq!(engine.positions(), vec![0, 0, 2]);
    }

    #[test]
    fn exclusivity_is_checked_at_construction() {
        let ring = Ring::new(8);
        let c = Configuration::from_counts(ring, vec![2, 0, 1, 0, 0, 0, 0, 0]).unwrap();
        let err = Engine::new(IdleProtocol, c, EngineOptions::default()).unwrap_err();
        assert!(matches!(err, SimError::BadInitialConfiguration { .. }));
    }

    #[test]
    fn idle_protocol_never_changes_configuration() {
        let c = cfg(&[0, 1, 2, 5]);
        let mut engine = Engine::with_default_options(IdleProtocol, c.clone()).unwrap();
        for r in 0..engine.num_robots() {
            let report = engine.step(&cycle(r), &mut ()).unwrap();
            assert!(!report.moved());
            assert_eq!(report.idles, 1);
        }
        assert_eq!(engine.configuration(), &c);
        assert_eq!(engine.move_count(), 0);
        assert!(engine.robots().iter().all(|r| r.cycles == 1));
    }

    #[test]
    fn greedy_walker_moves_and_is_traced() {
        let c = cfg(&[3, 4]); // two robots, gaps 3 and 4 on a 9-ring
        let options = EngineOptions::for_protocol(&GreedyGapWalker).with_trace();
        let mut engine = Engine::new(GreedyGapWalker, c, options).unwrap();
        let report = engine.step(&cycle(0), &mut ()).unwrap();
        assert_eq!(report.moves.len(), 1);
        assert_eq!(report.moves[0].robot, 0);
        assert_eq!(engine.move_count(), 1);
        assert_eq!(engine.trace().len(), 2); // Looked + Moved
        assert_eq!(engine.trace().moves().count(), 1);
    }

    #[test]
    fn monitor_hooks_fire_during_step() {
        let c = cfg(&[3, 4]);
        let mut engine = Engine::with_default_options(GreedyGapWalker, c).unwrap();
        let mut log = MoveLog::default();
        let report = engine.step(&cycle(0), &mut log).unwrap();
        assert_eq!(log.moves, report.moves);
    }

    #[test]
    fn monitors_observe_the_post_step_configuration() {
        // Moves within a round are simultaneous: every on_move of a
        // two-robot SSYNC round must see the configuration with BOTH moves
        // applied, never a half-completed round.
        struct SeenConfigs(Vec<Configuration>);
        impl crate::monitor::Monitor for SeenConfigs {
            fn on_move(&mut self, _record: &MoveRecord, after: &Configuration) {
                self.0.push(after.clone());
            }
        }
        let c = cfg(&[0, 6]); // adjacent robots walk apart simultaneously
        let mut engine = Engine::with_default_options(GreedyGapWalker, c).unwrap();
        let mut seen = SeenConfigs(Vec::new());
        engine
            .step(&SchedulerStep::SsyncRound(vec![0, 1]), &mut seen)
            .unwrap();
        assert_eq!(seen.0.len(), 2);
        for observed in &seen.0 {
            assert_eq!(observed, engine.configuration());
        }
    }

    #[test]
    fn pending_moves_use_outdated_snapshots() {
        // Robot 0 looks, then robot 2 moves, then robot 0 executes its stale move.
        let c = cfg(&[1, 1, 4]); // robots at 0, 2, 4 on a 9-ring
        let mut engine = Engine::new(
            GreedyGapWalker,
            c,
            EngineOptions {
                enforce_exclusivity: false,
                ..Default::default()
            },
        )
        .unwrap();
        engine.step(&SchedulerStep::Look(0), &mut ()).unwrap();
        let before = engine.positions();
        engine.step(&cycle(2), &mut ()).unwrap();
        // Robot 0 still executes the move it computed before robot 2 moved.
        let report = engine.step(&SchedulerStep::Execute(0), &mut ()).unwrap();
        assert_eq!(report.moves.len(), 1, "stale move still executes");
        assert_eq!(report.moves[0].from, before[0]);
    }

    #[test]
    fn double_look_does_not_recompute() {
        let c = cfg(&[3, 4]);
        let mut engine = Engine::with_default_options(GreedyGapWalker, c).unwrap();
        let r1 = engine.step(&SchedulerStep::Look(0), &mut ()).unwrap();
        let looks = engine.look_count();
        let r2 = engine.step(&SchedulerStep::Look(0), &mut ()).unwrap();
        assert_eq!(engine.look_count(), looks, "second look is a no-op");
        assert_eq!(r1.looks, 1);
        assert_eq!(
            r2.looks, 0,
            "re-look of a pending robot is not a fresh look"
        );
    }

    #[test]
    fn exclusivity_violation_is_reported() {
        // Two adjacent robots walking towards each other's node.
        #[derive(Debug)]
        struct TowardsOther;
        impl Protocol for TowardsOther {
            fn name(&self) -> &str {
                "towards-other"
            }
            fn compute(&self, snapshot: &Snapshot) -> Decision {
                // Move towards the closer occupied node.
                let a = snapshot.views[0].gap(0);
                let b = snapshot.views[1].gap(0);
                if a <= b {
                    Decision::Move(ViewIndex::First)
                } else {
                    Decision::Move(ViewIndex::Second)
                }
            }
        }
        let c = cfg(&[0, 6]); // adjacent robots on an 8-ring
        let mut engine = Engine::with_default_options(TowardsOther, c).unwrap();
        let err = engine.step(&cycle(0), &mut ()).unwrap_err();
        assert!(matches!(err, SimError::ExclusivityViolation { .. }));
    }

    #[test]
    fn ssync_round_looks_before_moving() {
        // Under a fully synchronous round both adjacent robots see each other
        // *before* either moves; with the greedy walker both walk away from
        // each other into their larger gaps — no collision.
        let c = cfg(&[0, 6]);
        let mut engine = Engine::with_default_options(GreedyGapWalker, c).unwrap();
        let report = engine
            .step(&SchedulerStep::SsyncRound(vec![0, 1]), &mut ())
            .unwrap();
        assert_eq!(report.moves.len(), 2);
        assert_eq!(report.looks, 2);
        assert!(engine.configuration().is_exclusive());
    }

    #[test]
    fn reset_is_equivalent_to_a_fresh_engine() {
        // Run an engine for a while, reset it to a different configuration,
        // and check it behaves exactly like a freshly constructed one.
        let first = cfg(&[0, 1, 2, 5]);
        let second = cfg(&[3, 4]);
        let options = EngineOptions::for_protocol(&GreedyGapWalker).with_trace();
        let mut recycled = Engine::new(GreedyGapWalker, first, options).unwrap();
        let mut sched = RoundRobinScheduler::new();
        recycled.run_until(&mut sched, 40, |_| false);
        assert!(recycled.move_count() > 0);

        recycled.reset(GreedyGapWalker, &second, options).unwrap();
        assert_eq!(recycled.configuration(), &second);
        assert_eq!(recycled.step_count(), 0);
        assert_eq!(recycled.move_count(), 0);
        assert_eq!(recycled.look_count(), 0);
        assert!(recycled.trace().is_empty());
        assert!(recycled.robots().iter().all(|r| r.cycles == 0));

        let mut fresh = Engine::new(GreedyGapWalker, second, options).unwrap();
        let mut s1 = RoundRobinScheduler::new();
        let mut s2 = RoundRobinScheduler::new();
        let r1 = recycled.run_until(&mut s1, 25, |_| false);
        let r2 = fresh.run_until(&mut s2, 25, |_| false);
        assert_eq!(r1, r2);
        assert_eq!(recycled.configuration(), fresh.configuration());
        assert_eq!(recycled.positions(), fresh.positions());
        assert_eq!(recycled.trace().events(), fresh.trace().events());
    }

    #[test]
    fn reset_revalidates_exclusivity() {
        let ring = Ring::new(8);
        let multiplicity = Configuration::from_counts(ring, vec![2, 0, 1, 0, 0, 0, 0, 0]).unwrap();
        let mut engine = Engine::with_default_options(IdleProtocol, cfg(&[0, 1, 2, 5])).unwrap();
        let err = engine
            .reset(IdleProtocol, &multiplicity, EngineOptions::default())
            .unwrap_err();
        assert!(matches!(err, SimError::BadInitialConfiguration { .. }));
    }

    #[test]
    fn run_until_stops_on_condition() {
        let c = cfg(&[0, 1, 2, 5]);
        let mut engine = Engine::with_default_options(GreedyGapWalker, c).unwrap();
        let mut sched = RoundRobinScheduler::new();
        let report = engine.run_until(&mut sched, 1000, |e| e.move_count() >= 5);
        assert!(report.succeeded());
        assert_eq!(engine.move_count(), 5);
    }

    #[test]
    fn run_reports_step_budget_exhaustion() {
        let c = cfg(&[0, 1, 2, 5]);
        let mut engine = Engine::with_default_options(IdleProtocol, c).unwrap();
        let mut sched = RoundRobinScheduler::new();
        let report = engine.run_until(&mut sched, 17, |_| false);
        assert_eq!(report.outcome, RunOutcome::StepBudgetExhausted);
        assert_eq!(report.steps, 17);
        assert_eq!(report.moves, 0);
    }

    #[test]
    fn run_feeds_the_monitor_and_stop_sees_it() {
        let c = cfg(&[0, 1, 2, 5]);
        let mut engine = Engine::with_default_options(GreedyGapWalker, c).unwrap();
        let mut sched = RoundRobinScheduler::new();
        let mut log = MoveLog::default();
        let report = engine.run(&mut sched, &mut log, 1000, |_, log: &MoveLog| {
            log.moves.len() >= 3
        });
        assert!(report.succeeded());
        assert_eq!(log.moves.len(), 3);
        assert_eq!(engine.move_count(), 3);
    }

    #[test]
    fn save_restore_round_trips_mid_cycle() {
        // Save in the middle of an asynchronous cycle (robot 0 has a pending
        // move), wander off, restore, and check the two futures coincide.
        let c = cfg(&[1, 1, 4]);
        let options = EngineOptions {
            enforce_exclusivity: false,
            ..Default::default()
        };
        let mut engine = Engine::new(GreedyGapWalker, c, options).unwrap();
        engine.step(&SchedulerStep::Look(0), &mut ()).unwrap();
        let saved = engine.save_state();
        assert!(saved.robots()[0].has_pending_move());

        // Excursion: complete other robots' cycles and robot 0's move.
        engine.step(&cycle(2), &mut ()).unwrap();
        engine.step(&SchedulerStep::Execute(0), &mut ()).unwrap();
        let excursion_positions = engine.positions();

        engine.restore_state(&saved);
        assert_eq!(engine.configuration(), saved.configuration());
        assert_eq!(engine.robots(), saved.robots());
        assert_eq!(engine.save_state(), saved);

        // Replaying the same steps reproduces the excursion exactly.
        engine.step(&cycle(2), &mut ()).unwrap();
        engine.step(&SchedulerStep::Execute(0), &mut ()).unwrap();
        assert_eq!(engine.positions(), excursion_positions);
    }

    #[test]
    fn exact_key_ignores_counters_but_not_phases() {
        let c = cfg(&[1, 1, 4]);
        let mut a = Engine::with_default_options(IdleProtocol, c.clone()).unwrap();
        let mut b = Engine::with_default_options(IdleProtocol, c).unwrap();
        // Advance `a` through a full idle cycle: same behavioural state,
        // different counters.
        a.step(&cycle(1), &mut ()).unwrap();
        assert_ne!(a.save_state(), b.save_state());
        assert_eq!(a.save_state().exact_key(), b.save_state().exact_key());
        // A pending phase *is* part of the key.
        b.step(&SchedulerStep::Look(1), &mut ()).unwrap();
        assert_ne!(a.save_state().exact_key(), b.save_state().exact_key());
    }

    #[test]
    fn canonical_key_is_invariant_under_rotation_and_reflection() {
        use rr_ring::Configuration;
        let ring = Ring::new(9);
        // Base: robots at 0, 2, 3 — rotate by r and reflect (v ↦ -v).
        let base = Configuration::new_exclusive(ring, &[0, 2, 3]).unwrap();
        let base_key = Engine::with_default_options(GreedyGapWalker, base)
            .unwrap()
            .save_state()
            .canonical_key();
        for rot in 0..9usize {
            for reflect in [false, true] {
                let nodes: Vec<usize> = [0usize, 2, 3]
                    .iter()
                    .map(|&v| {
                        let v = if reflect { (9 - v) % 9 } else { v };
                        (v + rot) % 9
                    })
                    .collect();
                let c = Configuration::new_exclusive(ring, &nodes).unwrap();
                let key = Engine::with_default_options(GreedyGapWalker, c)
                    .unwrap()
                    .save_state()
                    .canonical_key();
                assert_eq!(key, base_key, "rot={rot} reflect={reflect}");
            }
        }
        // A genuinely different configuration has a different key.
        let other = Configuration::new_exclusive(ring, &[0, 2, 4]).unwrap();
        let other_key = Engine::with_default_options(GreedyGapWalker, other)
            .unwrap()
            .save_state()
            .canonical_key();
        assert_ne!(other_key, base_key);
    }

    #[test]
    fn canonical_key_distinguishes_pending_directions_up_to_reflection() {
        // One robot with a pending cw move vs a pending ccw move: these are
        // reflections of each other on a symmetric occupancy, so their
        // canonical keys agree; but a pending move differs from no pending.
        let c = cfg(&[3, 3]); // robots at 0 and 4 on an 8-ring (symmetric)
        let mut cw = Engine::with_default_options(GreedyGapWalker, c.clone()).unwrap();
        let ready_key = cw.save_state().canonical_key();
        cw.step(&SchedulerStep::Look(0), &mut ()).unwrap();
        let cw_key = cw.save_state().canonical_key();
        assert_ne!(ready_key, cw_key);

        // Mirror: build the reflected engine state by letting the *other*
        // robot look (by symmetry its pending move is the reflection).
        let mut ccw = Engine::with_default_options(GreedyGapWalker, c).unwrap();
        ccw.step(&SchedulerStep::Look(1), &mut ()).unwrap();
        assert_eq!(ccw.save_state().canonical_key(), cw_key);
    }

    #[test]
    fn pack_round_trips_mid_cycle_states_byte_for_byte() {
        // Drive an engine through a partial asynchronous cycle (pending move
        // + pending idle + completed cycles), pack, restore, and require the
        // restored state to equal the saved one field for field.
        let c = cfg(&[1, 1, 4]);
        let options = EngineOptions {
            enforce_exclusivity: false,
            ..Default::default()
        };
        let mut engine = Engine::new(GreedyGapWalker, c, options).unwrap();
        engine.step(&cycle(1), &mut ()).unwrap();
        engine.step(&SchedulerStep::Look(0), &mut ()).unwrap();
        let saved = engine.save_state();
        let packed = saved.pack();
        assert_eq!(packed, engine.pack_state(), "both pack entry points agree");

        // Wander off, restore from the packed bits alone.
        engine.step(&cycle(2), &mut ()).unwrap();
        engine.step(&SchedulerStep::Execute(0), &mut ()).unwrap();
        engine.restore_packed(&packed);
        assert_eq!(engine.save_state(), saved);
        assert_eq!(engine.configuration(), saved.configuration());
        assert_eq!(engine.robots(), saved.robots());

        // save_state_into reuses storage and produces the same state.
        let mut reused = engine.save_state();
        engine.step(&cycle(2), &mut ()).unwrap();
        engine.restore_packed(&packed);
        engine.save_state_into(&mut reused);
        assert_eq!(reused, saved);
    }

    #[test]
    fn behavior_sig_matches_exact_key_equality() {
        let c = cfg(&[1, 1, 4]);
        let mut a = Engine::with_default_options(IdleProtocol, c.clone()).unwrap();
        let mut b = Engine::with_default_options(IdleProtocol, c).unwrap();
        // Different counters, same behaviour: equal sigs.
        a.step(&cycle(1), &mut ()).unwrap();
        assert_ne!(a.pack_state(), b.pack_state(), "counters differ");
        assert_eq!(a.pack_state().behavior_sig(), b.pack_state().behavior_sig());
        // A pending phase is part of the signature.
        b.step(&SchedulerStep::Look(1), &mut ()).unwrap();
        assert_ne!(a.pack_state().behavior_sig(), b.pack_state().behavior_sig());
        assert_eq!(
            a.save_state().exact_key() == b.save_state().exact_key(),
            a.pack_state().behavior_sig() == b.pack_state().behavior_sig()
        );
    }

    #[test]
    fn canonical_sig_matches_canonical_key_equality() {
        use rr_ring::Configuration;
        let ring = Ring::new(9);
        let base = Configuration::new_exclusive(ring, &[0, 2, 3]).unwrap();
        let base_sig = Engine::with_default_options(GreedyGapWalker, base)
            .unwrap()
            .pack_state()
            .canonical_sig();
        for rot in 0..9usize {
            for reflect in [false, true] {
                let nodes: Vec<usize> = [0usize, 2, 3]
                    .iter()
                    .map(|&v| {
                        let v = if reflect { (9 - v) % 9 } else { v };
                        (v + rot) % 9
                    })
                    .collect();
                let c = Configuration::new_exclusive(ring, &nodes).unwrap();
                let sig = Engine::with_default_options(GreedyGapWalker, c)
                    .unwrap()
                    .pack_state()
                    .canonical_sig();
                assert_eq!(sig, base_sig, "rot={rot} reflect={reflect}");
            }
        }
        let other = Configuration::new_exclusive(ring, &[0, 2, 4]).unwrap();
        let other_sig = Engine::with_default_options(GreedyGapWalker, other)
            .unwrap()
            .pack_state()
            .canonical_sig();
        assert_ne!(other_sig, base_sig);

        // Pending-move directions up to reflection, like canonical_key.
        let sym = cfg(&[3, 3]);
        let mut cw = Engine::with_default_options(GreedyGapWalker, sym.clone()).unwrap();
        let ready_sig = cw.pack_state().canonical_sig();
        cw.step(&SchedulerStep::Look(0), &mut ()).unwrap();
        let cw_sig = cw.pack_state().canonical_sig();
        assert_ne!(ready_sig, cw_sig);
        let mut ccw = Engine::with_default_options(GreedyGapWalker, sym).unwrap();
        ccw.step(&SchedulerStep::Look(1), &mut ()).unwrap();
        assert_eq!(ccw.pack_state().canonical_sig(), cw_sig);
    }

    #[test]
    #[should_panic(expected = "ring size mismatch")]
    fn restore_packed_rejects_mismatched_states() {
        let mut a = Engine::with_default_options(IdleProtocol, cfg(&[0, 1, 2, 5])).unwrap();
        let b = Engine::with_default_options(IdleProtocol, cfg(&[3, 4])).unwrap();
        let packed = b.pack_state();
        a.restore_packed(&packed);
    }

    #[test]
    #[should_panic(expected = "ring size mismatch")]
    fn restore_rejects_mismatched_states() {
        let mut a = Engine::with_default_options(IdleProtocol, cfg(&[0, 1, 2, 5])).unwrap();
        let b = Engine::with_default_options(IdleProtocol, cfg(&[3, 4])).unwrap();
        let state = b.save_state();
        a.restore_state(&state);
    }

    /// Drives two engines in lockstep through the same schedule and requires
    /// identical reports, counters, configurations and traces.
    fn assert_lockstep_equal<P: Protocol + Clone>(mut a: Engine<P>, mut b: Engine<P>, steps: u64) {
        let mut sched_a = RoundRobinScheduler::new();
        let mut sched_b = RoundRobinScheduler::new();
        let ra = a.run_until(&mut sched_a, steps, |_| false);
        let rb = b.run_until(&mut sched_b, steps, |_| false);
        assert_eq!(ra, rb);
        assert_eq!(a.configuration(), b.configuration());
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.look_count(), b.look_count());
        assert_eq!(a.trace().events(), b.trace().events());
    }

    #[test]
    fn scan_baseline_look_path_is_observably_identical() {
        // The benchmark baseline pipeline must not be a different semantics.
        let c = cfg(&[0, 1, 2, 5]);
        let incremental = EngineOptions::for_protocol(&GreedyGapWalker).with_trace();
        let baseline = incremental.with_look_path(LookPath::ScanBaseline);
        assert_eq!(incremental.look_path, LookPath::Incremental);
        assert_lockstep_equal(
            Engine::new(GreedyGapWalker, c.clone(), incremental).unwrap(),
            Engine::new(GreedyGapWalker, c, baseline).unwrap(),
            200,
        );
    }

    #[test]
    fn leap_fast_round_is_observably_identical() {
        // Full-activation SSYNC rounds issued through `step` exercise the
        // certified fast path directly (the `run` loop would route a
        // round-uniform scheduler to the batched leap instead).  Every
        // observable — reports, configurations, counters, trace — must be
        // byte-identical to the baseline pipeline.
        for gaps in [
            &[0usize, 1, 2, 5][..],
            &[1, 1, 4],
            &[3, 0, 2, 0, 6],
            &[2, 2, 2],
        ] {
            let c = cfg(gaps);
            let base_opts = EngineOptions::for_protocol(&GreedyGapWalker).with_trace();
            let leap_opts = base_opts.with_step_path(StepPath::Leap);
            let mut base = Engine::new(GreedyGapWalker, c.clone(), base_opts).unwrap();
            let mut leap = Engine::new(GreedyGapWalker, c, leap_opts).unwrap();
            let all: Vec<RobotId> = (0..base.positions().len()).collect();
            for _ in 0..60 {
                let round = SchedulerStep::SsyncRound(all.clone());
                let rb = base.step(&round, &mut ()).unwrap();
                let rl = leap.step(&round, &mut ()).unwrap();
                assert_eq!(rb, rl);
                assert_eq!(base.configuration(), leap.configuration());
                assert_eq!(base.positions(), leap.positions());
            }
            assert_eq!(base.look_count(), leap.look_count());
            assert_eq!(base.step_count(), leap.step_count());
            assert_eq!(base.trace().events(), leap.trace().events());
        }
    }

    #[test]
    fn leap_step_path_is_observably_identical_under_round_robin() {
        // Partial activations: single-mover certificates survive them, all
        // others decline to the baseline path — either way nothing may
        // change observably.
        let c = cfg(&[0, 1, 2, 5]);
        let base = EngineOptions::for_protocol(&GreedyGapWalker).with_trace();
        let leap = base.with_step_path(StepPath::Leap);
        assert_lockstep_equal(
            Engine::new(GreedyGapWalker, c.clone(), base).unwrap(),
            Engine::new(GreedyGapWalker, c, leap).unwrap(),
            200,
        );
    }

    #[test]
    fn batched_leap_matches_fully_synchronous_stepping() {
        // Under a round-uniform scheduler the run loop applies certified
        // rounds in closed form.  Counter parity with stepping is exact, so
        // run reports, counters and final configurations must all agree.
        use crate::scheduler::FullySynchronousScheduler;
        for gaps in [
            &[0usize, 1, 2, 5][..],
            &[1, 1, 4],
            &[3, 0, 2, 0, 6],
            &[2, 2, 2],
        ] {
            let c = cfg(gaps);
            let opts = EngineOptions::for_protocol(&GreedyGapWalker);
            let mut base = Engine::new(GreedyGapWalker, c.clone(), opts).unwrap();
            let mut leap =
                Engine::new(GreedyGapWalker, c, opts.with_step_path(StepPath::Leap)).unwrap();
            let rb = base.run_until(&mut FullySynchronousScheduler, 64, |_| false);
            let rl = leap.run_until(&mut FullySynchronousScheduler, 64, |_| false);
            assert_eq!(rb, rl);
            assert_eq!(base.configuration(), leap.configuration());
            assert_eq!(base.positions(), leap.positions());
            assert_eq!(base.step_count(), leap.step_count());
            assert_eq!(base.look_count(), leap.look_count());
        }
    }

    #[test]
    fn batched_leap_emits_one_summary_event_and_aggregate_callback() {
        use crate::leap::LeapRecord;
        use crate::scheduler::FullySynchronousScheduler;

        #[derive(Default)]
        struct LeapLog {
            records: Vec<LeapRecord>,
        }
        impl Monitor for LeapLog {
            fn on_leap(&mut self, record: &LeapRecord, _after: &Configuration) {
                self.records.push(*record);
            }
        }

        let c = cfg(&[0, 1, 2, 5]);
        let opts = EngineOptions::for_protocol(&GreedyGapWalker)
            .with_trace()
            .with_step_path(StepPath::Leap);
        let mut engine = Engine::new(GreedyGapWalker, c, opts).unwrap();
        let mut log = LeapLog::default();
        engine.run(&mut FullySynchronousScheduler, &mut log, 64, |_, _| false);
        assert!(!log.records.is_empty(), "no leap was taken");
        let k = engine.positions().len() as u64;
        for record in &log.records {
            assert!(record.rounds >= 1);
            assert_eq!(record.looks, k * record.rounds);
        }
        // Each aggregate callback has a matching summary trace event.
        let leaped: Vec<_> = engine
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Leaped { .. }))
            .collect();
        assert_eq!(leaped.len(), log.records.len());
    }

    #[test]
    fn disabled_trace_mode_changes_nothing_but_the_trace() {
        // TraceMode::Disabled skips event construction in the hot loops;
        // every other observable of the run must be byte-identical, and
        // Recording mode still produces the full event sequence.
        let c = cfg(&[0, 1, 2, 5]);
        let recording = EngineOptions::for_protocol(&GreedyGapWalker).with_trace();
        assert_eq!(recording.trace, TraceMode::Recording);
        let disabled = EngineOptions::for_protocol(&GreedyGapWalker);
        assert_eq!(disabled.trace, TraceMode::Disabled);

        let mut with_trace = Engine::new(GreedyGapWalker, c.clone(), recording).unwrap();
        let mut without = Engine::new(GreedyGapWalker, c, disabled).unwrap();
        let mut sched_a = RoundRobinScheduler::new();
        let mut sched_b = RoundRobinScheduler::new();
        let ra = with_trace.run_until(&mut sched_a, 120, |_| false);
        let rb = without.run_until(&mut sched_b, 120, |_| false);
        assert_eq!(ra, rb);
        assert_eq!(with_trace.configuration(), without.configuration());
        assert_eq!(with_trace.step_count(), without.step_count());
        assert_eq!(with_trace.look_count(), without.look_count());
        // Recording mode logged one event per completed phase; disabled
        // mode logged none.
        assert_eq!(with_trace.trace().len() as u64, with_trace.step_count());
        assert!(without.trace().is_empty());
    }

    #[test]
    fn look_memo_dense_table_caps_at_threshold() {
        // n = 16 > DENSE_MEMO_N: an exclusive configuration must use the
        // sparse map — never the 2^16 · 16-byte dense table.
        let big = cfg(&[2, 2, 2, 6]); // n = 16, exclusive
        let mut sparse_engine = Engine::with_default_options(GreedyGapWalker, big.clone()).unwrap();
        sparse_engine.enable_look_memo();
        let mut sched = RoundRobinScheduler::new();
        sparse_engine.run_until(&mut sched, 50, |_| false);
        assert!(
            sparse_engine.memo.dense.is_empty(),
            "dense table allocated beyond DENSE_MEMO_N"
        );
        assert!(!sparse_engine.memo.map.is_empty(), "sparse map unused");

        // n = 12 ≤ DENSE_MEMO_N: the dense table serves exclusive configs.
        let small = cfg(&[0, 1, 2, 5]); // n = 12, exclusive
        let mut dense_engine = Engine::with_default_options(GreedyGapWalker, small).unwrap();
        dense_engine.enable_look_memo();
        let mut sched = RoundRobinScheduler::new();
        dense_engine.run_until(&mut sched, 50, |_| false);
        assert!(!dense_engine.memo.dense.is_empty(), "dense table unused");
        assert!(dense_engine.memo.map.is_empty());

        // And above the cap the memo is still *correct*: identical run to an
        // unmemoized engine.
        let memoized = {
            let mut e = Engine::with_default_options(GreedyGapWalker, big.clone()).unwrap();
            e.enable_look_memo();
            e
        };
        let plain = Engine::with_default_options(GreedyGapWalker, big).unwrap();
        assert_lockstep_equal(memoized, plain, 200);
    }

    #[test]
    fn unknown_robot_is_rejected() {
        let c = cfg(&[0, 1, 2, 5]);
        let mut engine = Engine::with_default_options(IdleProtocol, c).unwrap();
        let look = engine.step(&SchedulerStep::Look(99), &mut ());
        assert!(matches!(look, Err(SimError::UnknownRobot { .. })));
        let execute = engine.step(&SchedulerStep::Execute(99), &mut ());
        assert!(matches!(execute, Err(SimError::UnknownRobot { .. })));
    }
}
