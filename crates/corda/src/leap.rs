//! Round leaping: certificates that let the engine apply many rounds at once.
//!
//! A protocol that can *prove* its next decisions are constant for a while
//! publishes a [`LeapPlan`] through `Protocol::leap_plan`
//! (see [`crate::protocol`]): per occupied node, the clockwise velocity the
//! robots there will keep for the next `horizon` full rounds.  The engine
//! (in [`StepPath::Leap`](crate::engine::StepPath) mode) uses the plan two
//! ways:
//!
//! * **per-step fast path** — while the plan is valid, `Engine::step` skips
//!   the Look/Compute pipeline and replays the planned decision through the
//!   ordinary move executor.  Counters, trace events, monitor callbacks and
//!   error behaviour are *identical by construction* to baseline stepping,
//!   under every scheduler;
//! * **batched leap** — under a round-uniform scheduler
//!   ([`Scheduler::is_round_uniform`](crate::scheduler::Scheduler)),
//!   `Engine::leap` applies `L ≤ horizon` whole rounds as one closed-form
//!   update of the occupancy index, emitting a single
//!   [`Event::Leaped`](crate::trace::Event) and one
//!   [`Monitor::on_leap`](crate::monitor::Monitor) aggregate callback.
//!
//! ### Certificate contract
//!
//! A protocol returning `true` from `leap_plan` asserts, for the
//! configuration it was called on:
//!
//! 1. at the start of each of the next `horizon` full rounds, every robot's
//!    decision equals the plan: move one step in its node's velocity
//!    direction (`0` = idle) — robots sharing a node share a velocity;
//! 2. applying the planned moves keeps the occupancy structure stable
//!    enough that (1) holds at every intermediate configuration; the only
//!    permitted structural change (a merge, say) is produced by the final
//!    round of the horizon;
//! 3. if at most one *robot* moves per round, the plan is additionally
//!    **interleaving-robust**: it stays valid under arbitrary activation
//!    subsets (any scheduler), with the horizon counted in executed moves of
//!    the walker.  Plans with two or more movers are only valid for full
//!    all-robot rounds, and the engine only fast-paths them on full
//!    activation sets;
//! 4. a plan whose horizon crosses an occupancy merge may only be issued by
//!    a protocol with `requires_exclusivity() == false` (otherwise the
//!    baseline engine would have raised an exclusivity violation mid-leap).
//!
//! The engine `debug_assert`s planned decisions against freshly computed
//! ones on the fast path, and the `leap_lockstep` proptest plus the bench
//! crate's sweep-equality harness check the contract end to end.

use rr_ring::NodeId;

/// A leap certificate: constant per-node velocities and how many full rounds
/// they are guaranteed to hold.
///
/// Produced by [`Protocol::leap_plan`](crate::protocol::Protocol::leap_plan)
/// into an engine-owned buffer (the `velocities` vector is reused across
/// refreshes, so steady-state plan computation allocates nothing).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LeapPlan {
    /// `(node, clockwise velocity)` for occupied nodes; `+1` moves clockwise,
    /// `-1` counter-clockwise each round.  Nodes omitted are idle; each
    /// occupied node appears at most once.
    pub velocities: Vec<(NodeId, i8)>,
    /// Number of full rounds the decisions are guaranteed constant
    /// ([`u64::MAX`] = forever, e.g. a gathered configuration).
    pub horizon: u64,
}

impl LeapPlan {
    /// Clears the plan for reuse (keeps the velocity buffer's capacity).
    pub fn clear(&mut self) {
        self.velocities.clear();
        self.horizon = 0;
    }
}

/// Aggregate record of one batched leap, handed to
/// [`Monitor::on_leap`](crate::monitor::Monitor::on_leap) together with the
/// configuration *after* the leap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeapRecord {
    /// Full rounds applied in this leap.
    pub rounds: u64,
    /// Robot moves executed across those rounds.
    pub moves: u64,
    /// Fresh Look phases performed across those rounds.
    pub looks: u64,
    /// Engine step counter after the leap.
    pub step: u64,
}
