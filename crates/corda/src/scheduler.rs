//! Schedulers: the adversary of the CORDA model.
//!
//! A scheduler decides, at every step, which robots are activated and whether
//! they perform a complete Look–Compute–Move cycle or only part of it.  The
//! paper's correctness proofs hold against the fully asynchronous adversary;
//! its impossibility proofs construct specific adversarial schedules.  This
//! module provides:
//!
//! * [`FullySynchronousScheduler`] — every robot performs a complete cycle in
//!   every round (FSYNC);
//! * [`SemiSynchronousScheduler`] — a random non-empty subset performs a
//!   complete cycle in every round (SSYNC);
//! * [`RoundRobinScheduler`] — a centralized/sequential scheduler activating
//!   one robot at a time in cyclic order;
//! * [`AsynchronousScheduler`] — interleaves Look and Move operations of
//!   different robots at random, creating *pending moves* computed on outdated
//!   snapshots (ASYNC, the model of the paper);
//! * [`ScriptedScheduler`] — replays an explicit schedule, used to reproduce
//!   the adversarial executions of the impossibility proofs (Theorems 2–5).
//!
//! All randomized schedulers are fair with probability one; for bounded runs
//! the fairness window can be bounded explicitly with
//! [`AsynchronousScheduler::with_fairness_window`].

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::robot::RobotId;

/// Scheduler-facing summary of the simulator state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerView {
    /// Global step counter.
    pub step: u64,
    /// For each robot, whether it has any pending action (move or idle).
    pub pending: Vec<bool>,
    /// For each robot, whether it has a pending *move*.
    pub pending_moves: Vec<bool>,
    /// Number of robots.
    pub num_robots: usize,
}

/// One scheduling decision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerStep {
    /// The listed robots all Look + Compute on the current configuration and
    /// then all execute their action (a semi-synchronous round; with a single
    /// robot this is an atomic Look–Compute–Move cycle).
    SsyncRound(Vec<RobotId>),
    /// The robot performs only its Look + Compute phases.
    Look(RobotId),
    /// The robot executes its pending action (if any).
    Execute(RobotId),
}

/// The adversary: decides which robots do what, when.
pub trait Scheduler {
    /// Produces the next scheduling decision.
    fn next(&mut self, view: &SchedulerView) -> SchedulerStep;

    /// Human-readable name, used in experiment output.
    fn name(&self) -> &str {
        "scheduler"
    }

    /// Whether this scheduler is *round-uniform*: every [`Scheduler::next`]
    /// returns a full-activation [`SchedulerStep::SsyncRound`] regardless of
    /// the view, and skipping calls is unobservable (the scheduler is
    /// stateless).  Round-uniform schedulers are the ones `Engine::leap` may
    /// batch whole rounds for without consulting the scheduler per round.
    fn is_round_uniform(&self) -> bool {
        false
    }
}

/// FSYNC: every robot performs a complete cycle in every round.
#[derive(Debug, Default, Clone, Copy)]
pub struct FullySynchronousScheduler;

impl Scheduler for FullySynchronousScheduler {
    fn next(&mut self, view: &SchedulerView) -> SchedulerStep {
        SchedulerStep::SsyncRound((0..view.num_robots).collect())
    }

    fn name(&self) -> &str {
        "fsync"
    }

    fn is_round_uniform(&self) -> bool {
        true
    }
}

/// SSYNC: a uniformly random non-empty subset of robots performs a complete
/// cycle in every round.
#[derive(Debug, Clone)]
pub struct SemiSynchronousScheduler {
    rng: ChaCha8Rng,
}

impl SemiSynchronousScheduler {
    /// Creates the scheduler from a seed (deterministic given the seed).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        SemiSynchronousScheduler {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for SemiSynchronousScheduler {
    fn next(&mut self, view: &SchedulerView) -> SchedulerStep {
        let k = view.num_robots;
        loop {
            let subset: Vec<RobotId> = (0..k).filter(|_| self.rng.gen_bool(0.5)).collect();
            if !subset.is_empty() {
                return SchedulerStep::SsyncRound(subset);
            }
        }
    }

    fn name(&self) -> &str {
        "ssync"
    }
}

/// A centralized sequential scheduler: robots are activated one at a time in
/// cyclic id order, each performing a complete Look–Compute–Move cycle.
#[derive(Debug, Default, Clone, Copy)]
pub struct RoundRobinScheduler {
    next: usize,
}

impl RoundRobinScheduler {
    /// Creates the scheduler starting from robot 0.
    #[must_use]
    pub fn new() -> Self {
        RoundRobinScheduler { next: 0 }
    }
}

impl Scheduler for RoundRobinScheduler {
    fn next(&mut self, view: &SchedulerView) -> SchedulerStep {
        let r = self.next % view.num_robots.max(1);
        self.next = (r + 1) % view.num_robots.max(1);
        SchedulerStep::SsyncRound(vec![r])
    }

    fn name(&self) -> &str {
        "round-robin"
    }
}

/// ASYNC: Look and Move operations of different robots are interleaved at
/// random, so moves routinely execute on snapshots that are out of date.
///
/// Fairness: the scheduler guarantees that no pending move stays unexecuted
/// for more than `fairness_window` scheduler steps, and that every robot is
/// given a Look at least once every `fairness_window * k` steps.
#[derive(Debug, Clone)]
pub struct AsynchronousScheduler {
    rng: ChaCha8Rng,
    fairness_window: u64,
    /// Step at which each robot last completed (or was created), used to
    /// enforce the fairness window.
    ages: Vec<u64>,
}

impl AsynchronousScheduler {
    /// Creates the scheduler from a seed (deterministic given the seed).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        AsynchronousScheduler {
            rng: ChaCha8Rng::seed_from_u64(seed),
            fairness_window: 64,
            ages: Vec::new(),
        }
    }

    /// Sets the fairness window (maximum delay, in scheduler steps, before a
    /// pending action is forcibly executed).
    #[must_use]
    pub fn with_fairness_window(mut self, window: u64) -> Self {
        self.fairness_window = window.max(1);
        self
    }
}

impl Scheduler for AsynchronousScheduler {
    fn next(&mut self, view: &SchedulerView) -> SchedulerStep {
        let k = view.num_robots;
        if self.ages.len() != k {
            self.ages = vec![view.step; k];
        }
        // Forcibly flush actions that have been pending too long, most
        // overdue first (oldest age wins; lowest id breaks exact ties).
        // Serving the *most* overdue robot matters: picking the first overdue
        // id would let small ids win every tie and starve the largest id
        // outright once the window is tight enough for the forced branches to
        // dominate the random one.
        if let Some(r) = (0..k)
            .filter(|&r| {
                view.pending[r] && view.step.saturating_sub(self.ages[r]) >= self.fairness_window
            })
            .min_by_key(|&r| self.ages[r])
        {
            self.ages[r] = view.step;
            return SchedulerStep::Execute(r);
        }
        // Forcibly wake robots that have been silent too long, most overdue
        // first.
        if let Some(r) = (0..k)
            .filter(|&r| {
                !view.pending[r]
                    && view.step.saturating_sub(self.ages[r]) >= self.fairness_window * k as u64
            })
            .min_by_key(|&r| self.ages[r])
        {
            self.ages[r] = view.step;
            return SchedulerStep::Look(r);
        }
        // Otherwise pick a random robot and advance whatever phase it is in.
        let r = self.rng.gen_range(0..k);
        self.ages[r] = view.step;
        if view.pending[r] {
            SchedulerStep::Execute(r)
        } else {
            SchedulerStep::Look(r)
        }
    }

    fn name(&self) -> &str {
        "async"
    }
}

/// The bounded-unfair fault adversary
/// ([`FaultModel::BoundedUnfair`](crate::fault::FaultModel::BoundedUnfair)):
/// behaves like [`AsynchronousScheduler`], except one *victim* robot is
/// withheld for the first `budget` scheduler steps (`u64::MAX`: forever).
///
/// While the budget lasts, the victim is excluded from the forced-fairness
/// branches *and* from the random pick — its fairness window is effectively
/// stretched by the budget, exactly the "starve one robot up to B rounds"
/// adversary.  Once the budget is exhausted the scheduler is the standard
/// fair asynchronous scheduler again, and since the victim is by then the
/// most overdue robot, the forced branches serve it promptly: the victim's
/// activation gap is bounded by `budget + window·k + O(k)` for finite
/// budgets.  With `budget == 1`, the single withheld step is absorbed by the
/// ordinary fairness slack, so the PR-3 starvation bounds still hold
/// (pinned by `crates/corda/tests/fairness_window.rs`).
///
/// Degenerate cases: with a single robot, or a victim id out of range, there
/// is nobody to starve and the scheduler is simply fair.
#[derive(Debug, Clone)]
pub struct BoundedUnfairScheduler {
    rng: ChaCha8Rng,
    fairness_window: u64,
    ages: Vec<u64>,
    victim: RobotId,
    budget: u64,
    issued: u64,
}

impl BoundedUnfairScheduler {
    /// Creates the scheduler from a seed (deterministic given the seed),
    /// withholding `victim` for the first `budget` scheduler steps.
    #[must_use]
    pub fn seeded(seed: u64, victim: RobotId, budget: u64) -> Self {
        BoundedUnfairScheduler {
            rng: ChaCha8Rng::seed_from_u64(seed),
            fairness_window: 64,
            ages: Vec::new(),
            victim,
            budget,
            issued: 0,
        }
    }

    /// Sets the fairness window applied to the non-starved robots (and to
    /// everybody once the budget is exhausted).
    #[must_use]
    pub fn with_fairness_window(mut self, window: u64) -> Self {
        self.fairness_window = window.max(1);
        self
    }

    /// The starved robot.
    #[must_use]
    pub fn victim(&self) -> RobotId {
        self.victim
    }

    /// Whether the victim is still being withheld.
    #[must_use]
    pub fn starving(&self) -> bool {
        self.issued < self.budget
    }
}

impl Scheduler for BoundedUnfairScheduler {
    fn next(&mut self, view: &SchedulerView) -> SchedulerStep {
        let k = view.num_robots;
        if self.ages.len() != k {
            self.ages = vec![view.step; k];
        }
        let starve = self.issued < self.budget && self.victim < k && k > 1;
        self.issued = self.issued.saturating_add(1);
        let victim = self.victim;
        let skip = |r: usize| starve && r == victim;
        // Forced branches mirror AsynchronousScheduler, minus the victim.
        if let Some(r) = (0..k)
            .filter(|&r| {
                !skip(r)
                    && view.pending[r]
                    && view.step.saturating_sub(self.ages[r]) >= self.fairness_window
            })
            .min_by_key(|&r| self.ages[r])
        {
            self.ages[r] = view.step;
            return SchedulerStep::Execute(r);
        }
        if let Some(r) = (0..k)
            .filter(|&r| {
                !skip(r)
                    && !view.pending[r]
                    && view.step.saturating_sub(self.ages[r]) >= self.fairness_window * k as u64
            })
            .min_by_key(|&r| self.ages[r])
        {
            self.ages[r] = view.step;
            return SchedulerStep::Look(r);
        }
        // Random pick over the eligible robots (one draw, no rejection loop,
        // so the schedule is a deterministic function of the seed).
        let r = if starve {
            let idx = self.rng.gen_range(0..k - 1);
            if idx >= victim {
                idx + 1
            } else {
                idx
            }
        } else {
            self.rng.gen_range(0..k)
        };
        self.ages[r] = view.step;
        if view.pending[r] {
            SchedulerStep::Execute(r)
        } else {
            SchedulerStep::Look(r)
        }
    }

    fn name(&self) -> &str {
        "unfair"
    }
}

/// Which space of adversarial interleavings a [`NondeterministicScheduler`]
/// branches over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterleavingMode {
    /// Semi-synchronous rounds: every non-empty subset of robots performs a
    /// complete Look–Compute–Move cycle simultaneously.
    SsyncSubsets,
    /// Asynchronous phase interleavings: at every step the adversary advances
    /// exactly one robot by one phase (a fresh Look, or the Execute of its
    /// pending action).  Sequential Looks on an unchanged configuration are
    /// indistinguishable from simultaneous ones, so this frontier generates
    /// every CORDA interleaving of Look and Move operations — including all
    /// pending-move executions on outdated snapshots.
    AsyncPhases,
}

impl InterleavingMode {
    /// Stable lower-case name, used in experiment records and tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            InterleavingMode::SsyncSubsets => "ssync",
            InterleavingMode::AsyncPhases => "async",
        }
    }
}

impl std::fmt::Display for InterleavingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The *whole* adversary at once: instead of sampling one schedule (like the
/// randomized schedulers above), exposes the complete branching frontier —
/// every scheduler step the adversary could take next from a given state.
///
/// This is what turns the engine into a model-checking transition relation:
/// the exhaustive checker (`rr_checker::explore`) saves the engine state,
/// applies each frontier step in turn, and restores.  A protocol verified
/// against this frontier is verified against **all** schedules of the mode,
/// not a seed sample of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NondeterministicScheduler {
    mode: InterleavingMode,
}

impl NondeterministicScheduler {
    /// Creates the scheduler for the given interleaving mode.
    #[must_use]
    pub fn new(mode: InterleavingMode) -> Self {
        NondeterministicScheduler { mode }
    }

    /// The interleaving mode.
    #[must_use]
    pub fn mode(&self) -> InterleavingMode {
        self.mode
    }

    /// All scheduler steps the adversary may take next from `view`, in a
    /// deterministic order (subset bitmask order for SSYNC, robot id order
    /// for ASYNC).  Never empty for a system with at least one robot.
    ///
    /// # Panics
    ///
    /// Panics in SSYNC mode for more than 20 robots (the subset frontier is
    /// exponential in `k`; exhaustive exploration is for small instances).
    #[must_use]
    pub fn frontier(&self, view: &SchedulerView) -> Vec<SchedulerStep> {
        let k = view.num_robots;
        match self.mode {
            InterleavingMode::SsyncSubsets => {
                assert!(k <= 20, "SSYNC subset frontier is exponential in k");
                (1u32..1 << k)
                    .map(|mask| {
                        SchedulerStep::SsyncRound(
                            (0..k).filter(|&r| mask & (1 << r) != 0).collect(),
                        )
                    })
                    .collect()
            }
            InterleavingMode::AsyncPhases => (0..k)
                .map(|r| {
                    if view.pending[r] {
                        SchedulerStep::Execute(r)
                    } else {
                        SchedulerStep::Look(r)
                    }
                })
                .collect(),
        }
    }

    /// The robots a frontier step activates, as a bitmask — the edge label
    /// the model checker's fairness analysis is built on.
    #[must_use]
    pub fn activation_mask(step: &SchedulerStep) -> u32 {
        match step {
            SchedulerStep::SsyncRound(robots) => {
                robots.iter().fold(0u32, |m, &r| m | 1 << (r as u32 % 32))
            }
            SchedulerStep::Look(r) | SchedulerStep::Execute(r) => 1 << (*r as u32 % 32),
        }
    }
}

/// Replays an explicit schedule, then repeats it forever (or falls back to
/// round-robin if constructed with `then_round_robin`).
///
/// This is the tool used to reproduce the adversarial executions of the
/// impossibility proofs: the proof's schedule is written down once and the
/// checker verifies that the targeted protocol indeed fails against it.
#[derive(Debug, Clone)]
pub struct ScriptedScheduler {
    script: Vec<SchedulerStep>,
    position: usize,
    repeat: bool,
    fallback_round_robin: RoundRobinScheduler,
}

impl ScriptedScheduler {
    /// A scheduler that replays `script` in a loop forever.
    #[must_use]
    pub fn looping(script: Vec<SchedulerStep>) -> Self {
        assert!(!script.is_empty(), "a scripted schedule cannot be empty");
        ScriptedScheduler {
            script,
            position: 0,
            repeat: true,
            fallback_round_robin: RoundRobinScheduler::new(),
        }
    }

    /// A scheduler that replays `script` once, then behaves as a round-robin
    /// scheduler.
    #[must_use]
    pub fn then_round_robin(script: Vec<SchedulerStep>) -> Self {
        ScriptedScheduler {
            script,
            position: 0,
            repeat: false,
            fallback_round_robin: RoundRobinScheduler::new(),
        }
    }

    /// Whether the scripted portion has been fully replayed at least once.
    #[must_use]
    pub fn script_exhausted(&self) -> bool {
        self.position >= self.script.len()
    }
}

impl Scheduler for ScriptedScheduler {
    fn next(&mut self, view: &SchedulerView) -> SchedulerStep {
        if self.position >= self.script.len() {
            if self.repeat {
                self.position = 0;
            } else {
                return self.fallback_round_robin.next(view);
            }
        }
        let step = self.script[self.position].clone();
        self.position += 1;
        step
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

/// The scheduler families used by verification and sweep runs, as data.
///
/// This is the declarative counterpart of the concrete scheduler types above:
/// batch runners and experiment grids carry a `SchedulerKind` (+ seed) in
/// their job descriptions and construct the scheduler at run time with
/// [`SchedulerKind::with`].  Lives here (not in `rr-checker`) so that every
/// layer — driver, checker, bench — can share the one vocabulary;
/// `rr_checker::verify` re-exports it for continuity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Sequential round-robin (one robot per step).
    RoundRobin,
    /// Random semi-synchronous (random non-empty subset per round).
    SemiSynchronous,
    /// Random asynchronous with pending moves.
    Asynchronous,
    /// Deterministic fully synchronous (every robot, every round).  Not part
    /// of [`SchedulerKind::ALL`]: the verification grids adversarially
    /// subsume it, but throughput experiments carry it explicitly because it
    /// is the round-uniform family `Engine::leap` can batch.
    FullySynchronous,
}

impl SchedulerKind {
    /// The adversarial scheduler kinds the verification sweeps run under.
    pub const ALL: [SchedulerKind; 3] = [
        SchedulerKind::RoundRobin,
        SchedulerKind::SemiSynchronous,
        SchedulerKind::Asynchronous,
    ];

    /// Stable lower-case name, used in experiment records and tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::SemiSynchronous => "ssync",
            SchedulerKind::Asynchronous => "async",
            SchedulerKind::FullySynchronous => "fsync",
        }
    }

    /// Builds the scheduler this kind describes (seeded where randomized) and
    /// hands it to `f`.
    pub fn with<R>(self, seed: u64, f: impl FnOnce(&mut dyn Scheduler) -> R) -> R {
        match self {
            SchedulerKind::RoundRobin => f(&mut RoundRobinScheduler::new()),
            SchedulerKind::SemiSynchronous => f(&mut SemiSynchronousScheduler::seeded(seed)),
            SchedulerKind::Asynchronous => f(&mut AsynchronousScheduler::seeded(seed)),
            SchedulerKind::FullySynchronous => f(&mut FullySynchronousScheduler),
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(k: usize, pending: &[bool]) -> SchedulerView {
        SchedulerView {
            step: 0,
            pending: pending.to_vec(),
            pending_moves: pending.to_vec(),
            num_robots: k,
        }
    }

    #[test]
    fn fsync_activates_everyone() {
        let mut s = FullySynchronousScheduler;
        let step = s.next(&view(4, &[false; 4]));
        assert_eq!(step, SchedulerStep::SsyncRound(vec![0, 1, 2, 3]));
        assert_eq!(s.name(), "fsync");
    }

    #[test]
    fn ssync_subsets_are_nonempty_and_vary() {
        let mut s = SemiSynchronousScheduler::seeded(3);
        let mut sizes = std::collections::HashSet::new();
        for _ in 0..50 {
            match s.next(&view(5, &[false; 5])) {
                SchedulerStep::SsyncRound(set) => {
                    assert!(!set.is_empty());
                    assert!(set.len() <= 5);
                    sizes.insert(set.len());
                }
                other => panic!("unexpected step {other:?}"),
            }
        }
        assert!(sizes.len() > 1, "subsets should vary in size");
    }

    #[test]
    fn round_robin_cycles_through_robots() {
        let mut s = RoundRobinScheduler::new();
        let ids: Vec<_> = (0..6)
            .map(|_| match s.next(&view(3, &[false; 3])) {
                SchedulerStep::SsyncRound(v) => v[0],
                other => panic!("unexpected step {other:?}"),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn async_scheduler_executes_pending_and_looks_otherwise() {
        let mut s = AsynchronousScheduler::seeded(9);
        for _ in 0..100 {
            match s.next(&view(4, &[false, true, false, true])) {
                SchedulerStep::Execute(r) => assert!(r == 1 || r == 3),
                SchedulerStep::Look(r) => assert!(r == 0 || r == 2),
                other => panic!("unexpected step {other:?}"),
            }
        }
    }

    #[test]
    fn async_scheduler_flushes_old_pending_moves() {
        let mut s = AsynchronousScheduler::seeded(1).with_fairness_window(4);
        // Robot 2 has been pending since step 0; by step >= 4 it must be flushed.
        let v = SchedulerView {
            step: 100,
            pending: vec![false, false, true],
            pending_moves: vec![false, false, true],
            num_robots: 3,
        };
        // First call initializes ages at step 100; simulate later call.
        let _ = s.next(&v);
        let v2 = SchedulerView { step: 200, ..v };
        let step = s.next(&v2);
        assert_eq!(step, SchedulerStep::Execute(2));
    }

    #[test]
    fn bounded_unfair_withholds_the_victim_then_recovers() {
        // Infinite budget: the victim is never activated.
        let mut s = BoundedUnfairScheduler::seeded(7, 1, u64::MAX);
        for step in 0..500 {
            let v = SchedulerView {
                step,
                pending: vec![false, true, false],
                pending_moves: vec![false, true, false],
                num_robots: 3,
            };
            match s.next(&v) {
                SchedulerStep::Look(r) | SchedulerStep::Execute(r) => {
                    assert_ne!(r, 1, "victim activated at step {step}");
                }
                other => panic!("unexpected step {other:?}"),
            }
            assert!(s.starving());
        }
        // Finite budget: once exhausted, the overdue victim is served by the
        // forced branches within the ordinary fairness slack.
        let mut s = BoundedUnfairScheduler::seeded(7, 1, 10).with_fairness_window(4);
        let mut first_victim_activation = None;
        for step in 0..200 {
            let v = SchedulerView {
                step,
                pending: vec![false, true, false],
                pending_moves: vec![false, true, false],
                num_robots: 3,
            };
            match s.next(&v) {
                SchedulerStep::Look(r) | SchedulerStep::Execute(r) => {
                    if r == 1 && first_victim_activation.is_none() {
                        first_victim_activation = Some(step);
                    }
                }
                other => panic!("unexpected step {other:?}"),
            }
        }
        let first = first_victim_activation.expect("victim served after budget");
        assert!(first >= 10, "victim activated during its budget: {first}");
        assert!(first <= 10 + 4 * 3 + 6, "victim served late: {first}");
        assert!(!s.starving());
        assert_eq!(s.victim(), 1);
        assert_eq!(s.name(), "unfair");
    }

    #[test]
    fn bounded_unfair_with_one_robot_cannot_starve() {
        let mut s = BoundedUnfairScheduler::seeded(3, 0, u64::MAX);
        match s.next(&view(1, &[false])) {
            SchedulerStep::Look(0) => {}
            other => panic!("unexpected step {other:?}"),
        }
    }

    #[test]
    fn ssync_frontier_enumerates_every_nonempty_subset() {
        let s = NondeterministicScheduler::new(InterleavingMode::SsyncSubsets);
        let frontier = s.frontier(&view(3, &[false; 3]));
        assert_eq!(frontier.len(), 7);
        let mut masks: Vec<u32> = frontier
            .iter()
            .map(NondeterministicScheduler::activation_mask)
            .collect();
        masks.sort_unstable();
        assert_eq!(masks, (1..=7).collect::<Vec<u32>>());
        assert!(frontier
            .iter()
            .all(|f| matches!(f, SchedulerStep::SsyncRound(v) if !v.is_empty())));
    }

    #[test]
    fn async_frontier_advances_each_robot_by_one_phase() {
        let s = NondeterministicScheduler::new(InterleavingMode::AsyncPhases);
        let frontier = s.frontier(&view(4, &[false, true, false, true]));
        assert_eq!(
            frontier,
            vec![
                SchedulerStep::Look(0),
                SchedulerStep::Execute(1),
                SchedulerStep::Look(2),
                SchedulerStep::Execute(3),
            ]
        );
        for (r, step) in frontier.iter().enumerate() {
            assert_eq!(NondeterministicScheduler::activation_mask(step), 1 << r);
        }
    }

    #[test]
    fn interleaving_mode_names() {
        assert_eq!(InterleavingMode::SsyncSubsets.name(), "ssync");
        assert_eq!(InterleavingMode::AsyncPhases.to_string(), "async");
    }

    #[test]
    fn scripted_scheduler_replays_and_loops() {
        let script = vec![
            SchedulerStep::Look(0),
            SchedulerStep::Execute(0),
            SchedulerStep::SsyncRound(vec![1]),
        ];
        let mut s = ScriptedScheduler::looping(script.clone());
        let v = view(2, &[false, false]);
        for i in 0..9 {
            assert_eq!(s.next(&v), script[i % 3]);
        }
    }

    #[test]
    fn scripted_scheduler_falls_back_to_round_robin() {
        let script = vec![SchedulerStep::Look(1)];
        let mut s = ScriptedScheduler::then_round_robin(script);
        let v = view(2, &[false, false]);
        assert_eq!(s.next(&v), SchedulerStep::Look(1));
        assert!(s.script_exhausted());
        assert_eq!(s.next(&v), SchedulerStep::SsyncRound(vec![0]));
        assert_eq!(s.next(&v), SchedulerStep::SsyncRound(vec![1]));
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_looping_script_is_rejected() {
        let _ = ScriptedScheduler::looping(vec![]);
    }
}
