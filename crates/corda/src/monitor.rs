//! Composable run observation: the [`Monitor`] trait.
//!
//! A monitor receives hooks from the [`Engine`](crate::engine::Engine)'s
//! single stepping pipeline — one per Look, one per executed move, one per
//! completed scheduler step — and accumulates whatever the caller wants to
//! know about a run (contamination state, exploration coverage, gathering
//! status, statistics).  Monitors never influence the execution; they only
//! observe it.
//!
//! Monitors compose structurally: `()` is the null monitor, `&mut M` and
//! tuples of monitors are monitors, so a driver can bolt several observers
//! onto one run without writing glue.  The task-specific monitors
//! (`Contamination`, `ExplorationTracker`, `GatheringMonitor`, composed as
//! `SearchMonitors`) live in the `rr-search` crate and implement this trait.

use rr_ring::Configuration;

use crate::engine::{MoveRecord, StepReport};
use crate::fault::FaultEvent;
use crate::leap::LeapRecord;
use crate::protocol::Decision;
use crate::robot::RobotId;

/// Observer hooks called by [`Engine::step`](crate::engine::Engine::step).
///
/// All hooks have empty default bodies: implement only what you need.
pub trait Monitor {
    /// Called after a robot completes a *fresh* Look + Compute (not for
    /// pending decisions that are merely re-reported).  `config` is the
    /// configuration the snapshot was taken from.
    fn on_look(&mut self, robot: RobotId, decision: Decision, config: &Configuration) {
        let _ = (robot, decision, config);
    }

    /// Called once per executed move after the enclosing scheduler step has
    /// completed, with the *post-step* configuration (moves within a
    /// semi-synchronous round are simultaneous in the model, so observers
    /// never see a half-completed round).
    fn on_move(&mut self, record: &MoveRecord, after: &Configuration) {
        let _ = (record, after);
    }

    /// Called once per completed scheduler step (an entire SSYNC round, a
    /// single Look, or a single Execute), after all of the step's moves.
    fn on_step(&mut self, report: &StepReport, config: &Configuration) {
        let _ = (report, config);
    }

    /// Called once per batched leap (`Engine::leap` in `StepPath::Leap`
    /// mode) with the aggregate record of the leaped rounds and the
    /// configuration *after* them, replacing the per-look/move/step hooks
    /// for those rounds.  Monitors that need individual move records (e.g.
    /// contamination tracking) must not be combined with batched leaping;
    /// aggregate monitors implement this to stay consistent.
    fn on_leap(&mut self, record: &LeapRecord, after: &Configuration) {
        let _ = (record, after);
    }

    /// Called when an armed [`FaultModel`](crate::fault::FaultModel) takes
    /// observable effect: once when a crash-stop fault first suppresses an
    /// activation, and once per corrupted Look (before the corrupted
    /// decision's `on_look`).  `config` is the configuration at the moment
    /// the fault fired.  Never called while `FaultModel::None` is armed.
    fn on_fault(&mut self, event: &FaultEvent, config: &Configuration) {
        let _ = (event, config);
    }
}

/// The null monitor: observes nothing.
impl Monitor for () {}

impl<M: Monitor + ?Sized> Monitor for &mut M {
    fn on_look(&mut self, robot: RobotId, decision: Decision, config: &Configuration) {
        (**self).on_look(robot, decision, config);
    }

    fn on_move(&mut self, record: &MoveRecord, after: &Configuration) {
        (**self).on_move(record, after);
    }

    fn on_step(&mut self, report: &StepReport, config: &Configuration) {
        (**self).on_step(report, config);
    }

    fn on_leap(&mut self, record: &LeapRecord, after: &Configuration) {
        (**self).on_leap(record, after);
    }

    fn on_fault(&mut self, event: &FaultEvent, config: &Configuration) {
        (**self).on_fault(event, config);
    }
}

macro_rules! tuple_monitors {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Monitor),+> Monitor for ($($name,)+) {
            fn on_look(&mut self, robot: RobotId, decision: Decision, config: &Configuration) {
                $(self.$idx.on_look(robot, decision, config);)+
            }

            fn on_move(&mut self, record: &MoveRecord, after: &Configuration) {
                $(self.$idx.on_move(record, after);)+
            }

            fn on_step(&mut self, report: &StepReport, config: &Configuration) {
                $(self.$idx.on_step(report, config);)+
            }

            fn on_leap(&mut self, record: &LeapRecord, after: &Configuration) {
                $(self.$idx.on_leap(record, after);)+
            }

            fn on_fault(&mut self, event: &FaultEvent, config: &Configuration) {
                $(self.$idx.on_fault(event, config);)+
            }
        }
    )*};
}

tuple_monitors! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// A monitor that records every move; handy in tests and small tools.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MoveLog {
    /// The observed move records, in execution order.
    pub moves: Vec<MoveRecord>,
}

impl Monitor for MoveLog {
    fn on_move(&mut self, record: &MoveRecord, _after: &Configuration) {
        self.moves.push(*record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        looks: usize,
        moves: usize,
        steps: usize,
    }

    impl Monitor for Counter {
        fn on_look(&mut self, _r: RobotId, _d: Decision, _c: &Configuration) {
            self.looks += 1;
        }

        fn on_move(&mut self, _rec: &MoveRecord, _c: &Configuration) {
            self.moves += 1;
        }

        fn on_step(&mut self, _rep: &StepReport, _c: &Configuration) {
            self.steps += 1;
        }
    }

    #[test]
    fn tuples_fan_out_to_both_members() {
        let config = Configuration::from_gaps_at_origin(&[1, 2]);
        let record = MoveRecord {
            robot: 0,
            from: 0,
            to: 1,
            step: 1,
        };
        let report = StepReport::default();
        let mut pair = (Counter::default(), Counter::default());
        pair.on_look(0, Decision::Idle, &config);
        pair.on_move(&record, &config);
        pair.on_step(&report, &config);
        assert_eq!((pair.0.looks, pair.0.moves, pair.0.steps), (1, 1, 1));
        assert_eq!((pair.1.looks, pair.1.moves, pair.1.steps), (1, 1, 1));
    }

    #[test]
    fn move_log_records_in_order() {
        let config = Configuration::from_gaps_at_origin(&[1, 2]);
        let mut log = MoveLog::default();
        for step in 1..=3 {
            log.on_move(
                &MoveRecord {
                    robot: 0,
                    from: 0,
                    to: 1,
                    step,
                },
                &config,
            );
        }
        assert_eq!(log.moves.len(), 3);
        assert!(log.moves.windows(2).all(|w| w[0].step < w[1].step));
    }
}
