//! Bit-packed engine states: the memory-compact storage format of the
//! exhaustive model checker.
//!
//! A [`crate::EngineState`] is faithful but fat: it owns a full
//! per-node occupancy vector and a `RobotState` vector — several heap
//! allocations and hundreds of bytes per state, which is what capped the
//! checker at `n ≤ 8`.  A [`PackedState`] encodes the *same information* into
//! a handful of `u64` words (inline for every checkable instance — no heap
//! allocation at all):
//!
//! * the occupancy vector is **not stored at all** — the engine maintains one
//!   robot per unit of multiplicity, so the configuration is exactly the
//!   multiset of robot positions and is rebuilt on restore;
//! * a pending move's target is always adjacent to the robot, so each robot
//!   needs only its node (`⌈log₂ n⌉` bits) and a 2-bit phase code (ready /
//!   idle-pending / move-pending-cw / move-pending-ccw);
//! * the monotone step/move/look counters are stored at the width of the
//!   largest one (chosen per state), so shallow states — the only kind an
//!   exhaustive search meets — stay small while arbitrarily old states still
//!   round-trip exactly.
//!
//! The contract is **byte-identical round-tripping**: for every reachable
//! engine state, `engine.restore_packed(&state.pack())` leaves the engine in
//! a state whose `save_state()` equals `state` field for field (the
//! `packed_roundtrip` proptest suite serializes both sides to JSON and
//! compares the bytes).  Besides storage, a packed state answers the two
//! identity questions the checker asks — behavioural equality and canonical
//! (symmetry-quotient) equality — directly from the packed bits via
//! [`PackedState::behavior_sig`] and [`PackedState::canonical_sig`], without
//! unpacking.

use crate::robot::Phase;

/// Number of `u64` words in a state signature: 384 bits, enough for the
/// behavioural signature of `k ≤ 20` robots and the canonical signature of
/// rings with `n ≤ 24` nodes (16 bits of per-node phase counts each) — both
/// beyond what exhaustive checking can reach anyway.
pub const SIG_WORDS: usize = 6;

/// Largest ring size whose canonical signature fits [`SIG_WORDS`] words.
pub const MAX_CANONICAL_N: usize = SIG_WORDS * 64 / 16;

/// Fixed-size signature of a state: an inline, allocation-free hash-map key.
pub type StateSig = [u64; SIG_WORDS];

/// A fast multiply-xor hasher for small fixed-size keys built from `u64`
/// words — the engine's Look memo and the model checker's visited maps and
/// canonical-class sets all hash through it.  Not DoS-hardened: the keys
/// are internal to the simulation, never attacker-supplied.
#[derive(Debug, Default, Clone)]
pub struct SigHasher(u64);

impl std::hash::Hasher for SigHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u32(&mut self, value: u32) {
        self.write_u64(u64::from(value));
    }

    fn write_u64(&mut self, value: u64) {
        let mixed = (self.0 ^ value).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = mixed ^ (mixed >> 29);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// `BuildHasher` for [`SigHasher`]-keyed maps and sets.
pub type SigHashBuilder = std::hash::BuildHasherDefault<SigHasher>;

/// Robot phase as stored in a packed state: 2 bits, ready.
pub const PHASE_READY: u64 = 0;
/// Packed phase code: idle-pending (Looked, decided to stay).
pub const PHASE_IDLE: u64 = 1;
/// Packed phase code: move-pending clockwise.
pub const PHASE_MOVE_CW: u64 = 2;
/// Packed phase code: move-pending counter-clockwise.
pub const PHASE_MOVE_CCW: u64 = 3;

/// A bit-packed [`crate::EngineState`]: one small word vector holding
/// everything [`crate::Engine::restore_packed`] needs to reproduce the state
/// byte for byte.
///
/// Produced by [`crate::EngineState::pack`] or directly from a live engine
/// by [`crate::Engine::pack_state`] (both encodings are identical), or as
/// the counter-free behavioural projection by
/// [`crate::Engine::pack_behavior`].  Packed states order and compare by
/// their bits, which makes them usable as deterministic map keys; note that
/// — unlike [`crate::EngineState::exact_key`] — a full pack's bits *include*
/// the monotone counters, so two behaviourally equal states reached along
/// different paths generally pack differently.  Use
/// [`PackedState::behavior_sig`] for counter-free behavioural identity.
///
/// States of up to [`INLINE_WORDS`] words — every behavioural projection of
/// a checkable instance, and full packs of shallow states — are stored
/// inline with **no heap allocation at all**; longer streams spill to a
/// boxed slice.  The model checker allocates nothing per discovered state.
#[derive(Debug, Clone)]
pub struct PackedState {
    words: WordStore,
}

/// Inline capacity of a [`PackedState`], in 64-bit words.
pub const INLINE_WORDS: usize = 3;

#[derive(Debug, Clone)]
enum WordStore {
    Inline { len: u8, words: [u64; INLINE_WORDS] },
    Heap(Box<[u64]>),
}

impl PackedState {
    fn from_words(words: Vec<u64>) -> Self {
        let store = if words.len() <= INLINE_WORDS {
            let mut inline = [0u64; INLINE_WORDS];
            inline[..words.len()].copy_from_slice(&words);
            WordStore::Inline {
                len: words.len() as u8,
                words: inline,
            }
        } else {
            WordStore::Heap(words.into_boxed_slice())
        };
        PackedState { words: store }
    }
}

impl PartialEq for PackedState {
    fn eq(&self, other: &Self) -> bool {
        self.words() == other.words()
    }
}

impl Eq for PackedState {}

impl PartialOrd for PackedState {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PackedState {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.words().cmp(other.words())
    }
}

impl std::hash::Hash for PackedState {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.words().hash(state);
    }
}

/// Field layout of the bit stream (LSB-first within each word, in order):
/// `n:16, k:16, w:7`, then `step:w, moves:w, looks:w`, then per robot
/// `node:bn, phase:2, cycles:w, moves:w` where `bn = bits(n-1)` and `w` is
/// the width of the largest counter.
const N_BITS: u32 = 16;
const K_BITS: u32 = 16;
const W_BITS: u32 = 7;

/// Bits needed to store values `0..=max`.
fn bits_for(max: u64) -> u32 {
    64 - max.leading_zeros()
}

/// Appends `bits` low bits of `value` to the stream.
struct BitWriter {
    words: Vec<u64>,
    /// Bits already used in the last word.
    filled: u32,
}

impl BitWriter {
    fn with_capacity(bits: usize) -> Self {
        BitWriter {
            words: Vec::with_capacity(bits.div_ceil(64)),
            filled: 64,
        }
    }

    fn push(&mut self, value: u64, bits: u32) {
        debug_assert!(bits == 64 || value < 1u64 << bits);
        if bits == 0 {
            return;
        }
        if self.filled == 64 {
            self.words.push(0);
            self.filled = 0;
        }
        let last = self.words.last_mut().expect("word pushed above");
        *last |= value << self.filled;
        let room = 64 - self.filled;
        if bits <= room {
            self.filled += bits;
        } else {
            self.words.push(value >> room);
            self.filled = bits - room;
        }
    }

    fn finish(self) -> PackedState {
        PackedState::from_words(self.words)
    }
}

/// Reads fields back in the order they were pushed.
struct BitReader<'a> {
    words: &'a [u64],
    consumed: u32,
}

impl<'a> BitReader<'a> {
    fn new(packed: &'a PackedState) -> Self {
        BitReader {
            words: packed.words(),
            consumed: 0,
        }
    }

    fn pull(&mut self, bits: u32) -> u64 {
        if bits == 0 {
            return 0;
        }
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1 << bits) - 1
        };
        let mut value = (self.words[0] >> self.consumed) & mask;
        let room = 64 - self.consumed;
        if bits <= room {
            self.consumed += bits;
            if self.consumed == 64 {
                self.words = &self.words[1..];
                self.consumed = 0;
            }
        } else {
            self.words = &self.words[1..];
            value |= (self.words[0] & (mask >> room)) << room;
            self.consumed = bits - room;
        }
        value
    }
}

/// One robot as encoded in a packed state.
pub(crate) struct PackedRobot {
    pub node: usize,
    /// 0 ready, 1 idle-pending, 2 move-pending-cw, 3 move-pending-ccw.
    pub phase: u64,
    pub cycles: u64,
    pub moves: u64,
}

/// The encoder shared by [`crate::EngineState::pack`] and
/// [`crate::Engine::pack_state`].
pub(crate) fn encode(
    n: usize,
    step: u64,
    moves: u64,
    looks: u64,
    robots: impl ExactSizeIterator<Item = PackedRobot> + Clone,
) -> PackedState {
    let k = robots.len();
    assert!(n < 1 << N_BITS, "packed states support n < 2^16");
    assert!(k < 1 << K_BITS, "packed states support k < 2^16");
    let bn = bits_for(n as u64 - 1).max(1);
    let max_counter = robots
        .clone()
        .map(|r| r.cycles.max(r.moves))
        .fold(step.max(moves).max(looks), u64::max);
    let w = bits_for(max_counter);
    let total_bits = (N_BITS + K_BITS + W_BITS + 3 * w) as usize + k * (bn + 2 + 2 * w) as usize;
    let mut out = BitWriter::with_capacity(total_bits);
    out.push(n as u64, N_BITS);
    out.push(k as u64, K_BITS);
    out.push(u64::from(w), W_BITS);
    out.push(step, w);
    out.push(moves, w);
    out.push(looks, w);
    for r in robots {
        out.push(r.node as u64, bn);
        out.push(r.phase, 2);
        out.push(r.cycles, w);
        out.push(r.moves, w);
    }
    out.finish()
}

/// Decoded header + per-robot stream of a packed state.
pub(crate) struct Decoder<'a> {
    reader: BitReader<'a>,
    pub n: usize,
    pub k: usize,
    pub step: u64,
    pub moves: u64,
    pub looks: u64,
    bn: u32,
    w: u32,
}

impl<'a> Decoder<'a> {
    pub fn new(packed: &'a PackedState) -> Self {
        let mut reader = BitReader::new(packed);
        let n = reader.pull(N_BITS) as usize;
        let k = reader.pull(K_BITS) as usize;
        let w = reader.pull(W_BITS) as u32;
        let step = reader.pull(w);
        let moves = reader.pull(w);
        let looks = reader.pull(w);
        Decoder {
            reader,
            n,
            k,
            step,
            moves,
            looks,
            bn: bits_for(n as u64 - 1).max(1),
            w,
        }
    }

    /// Reads the next robot; must be called exactly `k` times.
    pub fn next_robot(&mut self) -> PackedRobot {
        let node = self.reader.pull(self.bn) as usize;
        let phase = self.reader.pull(2);
        let cycles = self.reader.pull(self.w);
        let moves = self.reader.pull(self.w);
        PackedRobot {
            node,
            phase,
            cycles,
            moves,
        }
    }
}

/// Converts an engine [`Phase`] into the 2-bit packed code, classifying a
/// pending move as cw/ccw relative to the robot's node on a ring of `n`.
pub(crate) fn phase_code(n: usize, node: usize, phase: Phase) -> u64 {
    match phase {
        Phase::Ready => PHASE_READY,
        Phase::IdlePending => PHASE_IDLE,
        Phase::MovePending { target } => {
            if (node + 1) % n == target {
                PHASE_MOVE_CW
            } else {
                debug_assert_eq!((node + n - 1) % n, target, "pending target not adjacent");
                PHASE_MOVE_CCW
            }
        }
    }
}

/// Inverse of [`phase_code`].
pub(crate) fn code_phase(n: usize, node: usize, code: u64) -> Phase {
    match code {
        PHASE_READY => Phase::Ready,
        PHASE_IDLE => Phase::IdlePending,
        PHASE_MOVE_CW => Phase::MovePending {
            target: (node + 1) % n,
        },
        PHASE_MOVE_CCW => Phase::MovePending {
            target: (node + n - 1) % n,
        },
        _ => unreachable!("2-bit phase code"),
    }
}

impl PackedState {
    /// The packed words (exposed for size accounting; the layout is private).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        match &self.words {
            WordStore::Inline { len, words } => &words[..usize::from(*len)],
            WordStore::Heap(words) => words,
        }
    }

    /// Rebuilds a packed state from raw words previously read off
    /// [`PackedState::words`] — the decode path of the checker's
    /// spill-to-disk store, whose cluster bases are written as raw words.
    /// The words are opaque: nothing is validated until the state is
    /// decoded, so only feed back words this type produced.
    #[must_use]
    pub fn from_raw_words(words: Vec<u64>) -> Self {
        PackedState::from_words(words)
    }

    /// Heap bytes held by this packed state (zero when stored inline).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        match &self.words {
            WordStore::Inline { .. } => 0,
            WordStore::Heap(words) => words.len() * 8,
        }
    }

    /// The **behavioural signature** of the packed state: robot nodes and
    /// phases, *excluding* the monotone counters — the allocation-free
    /// equivalent of [`crate::EngineState::exact_key`].  Two packed states of
    /// the same instance have equal signatures iff their engine states
    /// behave identically under every future schedule (for non-alternating
    /// view orders).  [`crate::Engine::behavior_sig`] computes the identical
    /// signature straight from a live engine.
    ///
    /// # Panics
    ///
    /// Panics if the per-robot encoding does not fit [`SIG_WORDS`] words
    /// (`k · (⌈log₂ n⌉ + 2) > 384` — far beyond exhaustively checkable
    /// instances).
    #[must_use]
    pub fn behavior_sig(&self) -> StateSig {
        let mut decoder = Decoder::new(self);
        let (n, k) = (decoder.n, decoder.k);
        behavior_sig_from(
            n,
            k,
            std::iter::from_fn(|| {
                let r = decoder.next_robot();
                Some((r.node, r.phase))
            }),
        )
    }

    /// The **canonical signature** of the packed state: the behavioural
    /// identity *up to ring automorphism and robot relabeling*, packed into
    /// a fixed [`StateSig`].  Equal signatures ⇔ equal
    /// [`crate::EngineState::canonical_key`]s; this is the allocation-free
    /// form the model checker's symmetry quotient and class statistics run
    /// on.
    ///
    /// The encoding mirrors `canonical_key`: per node, the 16-bit word
    /// `ready | idle << 4 | pending-cw << 8 | pending-ccw << 12`; the
    /// signature is the lexicographically smallest among the `2n`
    /// rotations/reflections of that word sequence (reflections swap cw and
    /// ccw), found with two Booth least-rotation scans
    /// ([`rr_ring::View::least_rotation_start`]) and packed four nodes per
    /// `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `n >` [`MAX_CANONICAL_N`] or if more than 15 robots share a
    /// node and phase (the 4-bit per-phase count).
    #[must_use]
    pub fn canonical_sig(&self) -> StateSig {
        let mut decoder = Decoder::new(self);
        let (n, k) = (decoder.n, decoder.k);
        canonical_sig_from(
            n,
            k,
            std::iter::from_fn(|| {
                let r = decoder.next_robot();
                Some((r.node, r.phase))
            }),
        )
    }

    /// The instance header `(n, k)` of this packed state.
    #[must_use]
    pub fn instance(&self) -> (usize, usize) {
        let decoder = Decoder::new(self);
        (decoder.n, decoder.k)
    }

    /// The `(node, phase code)` of every robot in robot-id order — the
    /// behavioural cells the canonical-quotient relabeling aligns on.  Phase
    /// codes are [`PHASE_READY`]/[`PHASE_IDLE`]/[`PHASE_MOVE_CW`]/
    /// [`PHASE_MOVE_CCW`].
    #[must_use]
    pub fn robot_cells(&self) -> Vec<(usize, u64)> {
        let mut decoder = Decoder::new(self);
        (0..decoder.k)
            .map(|_| {
                let r = decoder.next_robot();
                (r.node, r.phase)
            })
            .collect()
    }

    /// The dihedral transform under which this state attains its
    /// [`canonical_sig`](Self::canonical_sig): apply
    /// [`CanonicalTransform::canonical_index`] /
    /// [`CanonicalTransform::canonical_phase`] to every robot cell and the
    /// resulting per-node phase counts read off the canonical word.
    /// Deterministic in the state bits — equal packed states always report
    /// the same transform.
    #[must_use]
    pub fn canonical_transform(&self) -> CanonicalTransform {
        let mut decoder = Decoder::new(self);
        let (n, k) = (decoder.n, decoder.k);
        canonical_choice(
            n,
            k,
            std::iter::from_fn(|| {
                let r = decoder.next_robot();
                Some((r.node, r.phase))
            }),
        )
        .1
    }

    /// Encodes this state as a sparse XOR delta against `base` — the
    /// cluster-compression primitive of the checker's spill-to-disk state
    /// store.  BFS neighbours differ in a handful of packed words, so the
    /// delta is usually a few bytes where the raw words are dozens.
    ///
    /// Format (all varints LEB128): `word count of self`, `entry count`,
    /// then per entry `word index`, `xor word`.  Entries cover exactly the
    /// indices where `self` differs from `base`; indices past the shorter
    /// state XOR against zero.  [`PackedState::apply_delta`] inverts it.
    #[must_use]
    pub fn delta_from(&self, base: &PackedState) -> Vec<u8> {
        let mine = self.words();
        let theirs = base.words();
        let mut out = Vec::with_capacity(8);
        write_uleb(&mut out, mine.len() as u64);
        let entries: Vec<(usize, u64)> = (0..mine.len())
            .filter_map(|i| {
                let xor = mine[i] ^ theirs.get(i).copied().unwrap_or(0);
                (xor != 0).then_some((i, xor))
            })
            .collect();
        write_uleb(&mut out, entries.len() as u64);
        for (i, xor) in entries {
            write_uleb(&mut out, i as u64);
            write_uleb(&mut out, xor);
        }
        out
    }

    /// Reconstructs the state that produced `delta` via
    /// [`PackedState::delta_from`] against the same `base`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is truncated or malformed (the spill store only
    /// feeds back bytes it wrote itself).
    #[must_use]
    pub fn apply_delta(base: &PackedState, delta: &[u8]) -> PackedState {
        let mut cursor = delta;
        let len = read_uleb(&mut cursor) as usize;
        let base_words = base.words();
        let mut words = vec![0u64; len];
        let shared = len.min(base_words.len());
        words[..shared].copy_from_slice(&base_words[..shared]);
        let entries = read_uleb(&mut cursor);
        for _ in 0..entries {
            let i = read_uleb(&mut cursor) as usize;
            words[i] ^= read_uleb(&mut cursor);
        }
        assert!(cursor.is_empty(), "trailing bytes in packed-state delta");
        PackedState::from_words(words)
    }
}

/// LEB128 varint append: 7 bits per byte, high bit = continuation.
fn write_uleb(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// LEB128 varint read; advances `bytes` past the varint.
fn read_uleb(bytes: &mut &[u8]) -> u64 {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = bytes.split_first().expect("truncated varint");
        *bytes = rest;
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return value;
        }
        shift += 7;
        assert!(shift < 64, "varint overflows u64");
    }
}

/// [`PackedState::behavior_sig`] over any `(node, phase code)` stream of
/// exactly `k` robots — shared by the packed and the live-engine entry
/// points.
pub(crate) fn behavior_sig_from(
    n: usize,
    k: usize,
    robots: impl Iterator<Item = (usize, u64)>,
) -> StateSig {
    let bits = bits_for(n as u64 - 1).max(1) + 2;
    assert!(
        k as u32 * bits <= (SIG_WORDS as u32) * 64,
        "behavior_sig: instance too large for the fixed signature"
    );
    let mut sig = [0u64; SIG_WORDS];
    let mut cursor = 0u32;
    for (node, phase) in robots.take(k) {
        let field = (node as u64) << 2 | phase;
        let (word, shift) = ((cursor / 64) as usize, cursor % 64);
        sig[word] |= field << shift;
        let room = 64 - shift;
        if bits > room {
            sig[word + 1] |= field >> room;
        }
        cursor += bits;
    }
    sig
}

/// Booth's two-candidate least-rotation scan over a short slice, with
/// branch-based wraparound (no division) — the hot-path twin of
/// [`View::least_rotation_start`], against which the tests pin it.
fn booth_start(word: &[u16]) -> usize {
    let k = word.len();
    let at = |t: usize| word[if t >= k { t - k } else { t }];
    let (mut i, mut j, mut len) = (0usize, 1usize, 0usize);
    while i < k && j < k && len < k {
        let a = at(i + len);
        let b = at(j + len);
        if a == b {
            len += 1;
            continue;
        }
        if a > b {
            i += len + 1;
        } else {
            j += len + 1;
        }
        if i == j {
            j += 1;
        }
        len = 0;
    }
    i.min(j)
}

/// [`PackedState::canonical_sig`] over any `(node, phase code)` stream of
/// exactly `k` robots — shared by the packed and the live-engine entry
/// points.  Runs on stack arrays end to end: the model checker calls this
/// once per discovered state.
pub(crate) fn canonical_sig_from(
    n: usize,
    k: usize,
    robots: impl Iterator<Item = (usize, u64)>,
) -> StateSig {
    let (word, transform) = canonical_choice(n, k, robots);
    let wrap = |t: usize| if t >= n { t - n } else { t };
    let mut sig = [0u64; SIG_WORDS];
    for t in 0..n {
        sig[t / 4] |= u64::from(word[wrap(transform.start + t)]) << (16 * (t % 4));
    }
    sig
}

/// The dihedral transform a state's canonical signature was minimized with:
/// an optional reflection through node 0 followed by a rotation.  Two states
/// with equal [`PackedState::canonical_sig`] are mapped onto the *same*
/// canonical word by their respective transforms, which is what lets the
/// checker align the robots of two class-equal states deterministically
/// (the quotient-liveness relabeling in `rr-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanonicalTransform {
    /// Whether the winning orientation first reflects the ring through node
    /// 0 (`v ↦ (n - v) mod n`), which also swaps cw/ccw pending moves.
    pub reflect: bool,
    /// The rotation offset: the (post-reflection) node placed at canonical
    /// position 0.
    pub start: usize,
}

impl CanonicalTransform {
    /// Canonical position of ring node `node` on a ring of `n` nodes.
    #[must_use]
    pub fn canonical_index(&self, n: usize, node: usize) -> usize {
        let v = if self.reflect { (n - node) % n } else { node };
        (v + n - self.start) % n
    }

    /// Canonical form of a 2-bit phase code: reflections swap the cw/ccw
    /// pending directions, rotations leave phases alone.
    #[must_use]
    pub fn canonical_phase(&self, phase: u64) -> u64 {
        match (self.reflect, phase) {
            (true, PHASE_MOVE_CW) => PHASE_MOVE_CCW,
            (true, PHASE_MOVE_CCW) => PHASE_MOVE_CW,
            (_, p) => p,
        }
    }
}

/// Shared core of [`canonical_sig_from`] and the transform accessor: the
/// winning orientation's per-node 16-bit phase-count words and the dihedral
/// transform that produced it.  Deterministic in the state bits alone — the
/// same state always picks the same transform, on every worker.
fn canonical_choice(
    n: usize,
    k: usize,
    robots: impl Iterator<Item = (usize, u64)>,
) -> ([u16; MAX_CANONICAL_N], CanonicalTransform) {
    assert!(
        n <= MAX_CANONICAL_N,
        "canonical_sig supports n ≤ {MAX_CANONICAL_N}"
    );
    let mut counts = [[0u16; 4]; MAX_CANONICAL_N];
    for (node, phase) in robots.take(k) {
        let slot = &mut counts[node][phase as usize];
        *slot += 1;
        assert!(*slot < 16, "canonical_sig packs per-node counts in 4 bits");
    }
    // Forward word and the reflection through node 0 (v ↦ n - v mod n),
    // which also swaps the cw/ccw pending directions.
    let enc = |c: &[u16; 4], swap: bool| -> u16 {
        let (cw, ccw) = if swap { (c[3], c[2]) } else { (c[2], c[3]) };
        c[0] | c[1] << 4 | cw << 8 | ccw << 12
    };
    let mut fwd = [0u16; MAX_CANONICAL_N];
    let mut rev = [0u16; MAX_CANONICAL_N];
    for v in 0..n {
        fwd[v] = enc(&counts[v], false);
        rev[v] = enc(&counts[(n - v) % n], true);
    }
    let fi = booth_start(&fwd[..n]);
    let ri = booth_start(&rev[..n]);
    let wrap = |t: usize| if t >= n { t - n } else { t };
    let reversed_wins = (0..n).find_map(|t| {
        let a = fwd[wrap(fi + t)];
        let b = rev[wrap(ri + t)];
        (a != b).then_some(b < a)
    });
    if reversed_wins == Some(true) {
        (
            rev,
            CanonicalTransform {
                reflect: true,
                start: ri,
            },
        )
    } else {
        (
            fwd,
            CanonicalTransform {
                reflect: false,
                start: fi,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_stream_round_trips_mixed_widths() {
        let mut w = BitWriter::with_capacity(300);
        let fields: [(u64, u32); 8] = [
            (0x5A5A, 16),
            (0, 0),
            (1, 1),
            (u64::MAX, 64),
            (0x1F, 5),
            ((1 << 63) - 7, 63),
            (0, 7),
            (42, 17),
        ];
        for &(v, bits) in &fields {
            w.push(v, bits);
        }
        let packed = w.finish();
        let mut r = BitReader::new(&packed);
        for &(v, bits) in &fields {
            assert_eq!(r.pull(bits), v, "width {bits}");
        }
    }

    #[test]
    fn booth_start_matches_the_view_reference() {
        use rr_ring::View;
        let words: [&[u16]; 6] = [
            &[3, 1, 2, 1, 2],
            &[0, 0, 0],
            &[5],
            &[2, 1],
            &[1, 2, 1, 2],
            &[9, 8, 7, 6, 5, 4, 3, 2, 1, 0],
        ];
        for word in words {
            let expected =
                View::least_rotation_start(word.len(), |t| usize::from(word[t % word.len()]));
            assert_eq!(booth_start(word), expected, "{word:?}");
        }
    }

    #[test]
    fn delta_codec_round_trips_across_word_lengths() {
        let mk = |words: &[u64]| PackedState::from_words(words.to_vec());
        let cases: [(&[u64], &[u64]); 6] = [
            (&[1, 2, 3], &[1, 2, 3]),
            (&[1, 2, 3], &[1, 9, 3]),
            (&[1, 2], &[1, 2, 3, 4]),
            (&[1, 2, 3, 4], &[1, 2]),
            (&[], &[7]),
            (&[u64::MAX; 5], &[0; 5]),
        ];
        for (base_words, state_words) in cases {
            let base = mk(base_words);
            let state = mk(state_words);
            let delta = state.delta_from(&base);
            assert_eq!(
                PackedState::apply_delta(&base, &delta),
                state,
                "base {base_words:?} state {state_words:?}"
            );
        }
        // Equal states compress to the 2-byte empty delta.
        let a = mk(&[5, 6, 7]);
        assert_eq!(a.delta_from(&a).len(), 2);
    }

    #[test]
    fn uleb_round_trips_boundary_values() {
        for value in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_uleb(&mut buf, value);
            let mut cursor = &buf[..];
            assert_eq!(read_uleb(&mut cursor), value);
            assert!(cursor.is_empty());
        }
    }

    #[test]
    fn canonical_transform_reproduces_the_canonical_word() {
        // Hand-rolled states: (node, phase) cells on a ring of n — including
        // one whose winner is a reflection (an asymmetric pending-move
        // pattern) — re-encoded through the reported transform must land on
        // the canonical signature's word sequence.
        let cases: [(usize, Vec<(usize, u64)>); 3] = [
            (6, vec![(0, PHASE_READY), (1, PHASE_MOVE_CW)]),
            (
                7,
                vec![(2, PHASE_MOVE_CCW), (3, PHASE_IDLE), (3, PHASE_READY)],
            ),
            (
                5,
                vec![(0, PHASE_MOVE_CW), (1, PHASE_MOVE_CW), (4, PHASE_READY)],
            ),
        ];
        for (n, cells) in cases {
            let k = cells.len();
            let sig = canonical_sig_from(n, k, cells.iter().copied());
            let (_, transform) = canonical_choice(n, k, cells.iter().copied());
            // Rebuild the canonical word from transformed cells.
            let mut counts = [[0u16; 4]; MAX_CANONICAL_N];
            for &(node, phase) in &cells {
                let ci = transform.canonical_index(n, node);
                let cp = transform.canonical_phase(phase);
                counts[ci][cp as usize] += 1;
            }
            let mut rebuilt = [0u64; SIG_WORDS];
            for (t, c) in counts[..n].iter().enumerate() {
                let word = u64::from(c[0])
                    | u64::from(c[1]) << 4
                    | u64::from(c[2]) << 8
                    | u64::from(c[3]) << 12;
                rebuilt[t / 4] |= word << (16 * (t % 4));
            }
            assert_eq!(rebuilt, sig, "n={n} cells {cells:?}");
        }
    }

    #[test]
    fn bits_for_edge_cases() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }
}
