//! The protocol abstraction: what an anonymous, oblivious, uniform robot may
//! compute from its snapshot.

use rr_ring::{leap::rounds_at_least, leap::rounds_exactly, Configuration, Direction};
use serde::{Deserialize, Serialize};

use crate::leap::LeapPlan;
use crate::snapshot::{MultiplicityCapability, Snapshot};

/// Index into [`Snapshot::views`]: identifies one of the robot's two reading
/// directions *relative to the snapshot*, never a global orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ViewIndex {
    /// The direction of `snapshot.views[0]`.
    First,
    /// The direction of `snapshot.views[1]`.
    Second,
}

impl ViewIndex {
    /// The two indices.
    pub const BOTH: [ViewIndex; 2] = [ViewIndex::First, ViewIndex::Second];

    /// Numeric index (0 or 1).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            ViewIndex::First => 0,
            ViewIndex::Second => 1,
        }
    }

    /// The other index.
    #[must_use]
    pub fn other(self) -> ViewIndex {
        match self {
            ViewIndex::First => ViewIndex::Second,
            ViewIndex::Second => ViewIndex::First,
        }
    }
}

/// Outcome of the Compute phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// Stay idle this cycle.
    Idle,
    /// Move one step towards the first interval of the indicated view, i.e. in
    /// the reading direction of that view.
    Move(ViewIndex),
}

impl Decision {
    /// Whether the decision is a move.
    #[must_use]
    pub fn is_move(&self) -> bool {
        matches!(self, Decision::Move(_))
    }
}

/// A min-CORDA protocol: a deterministic function of the local snapshot.
///
/// Implementations must be:
///
/// * **uniform** — the same object is shared by every robot;
/// * **oblivious** — `compute` must not retain state between calls (the trait
///   takes `&self` to make accidental state mutation impossible without
///   interior mutability);
/// * **disorientation-safe** — swapping the two views of the snapshot must
///   yield the physically identical decision (this is checked for the paper's
///   protocols in the test suites).
pub trait Protocol {
    /// Human-readable name (used in traces, experiment output and errors).
    fn name(&self) -> &str;

    /// The multiplicity-detection capability this protocol requires.
    fn capability(&self) -> MultiplicityCapability {
        MultiplicityCapability::None
    }

    /// Whether the task solved by this protocol requires the exclusivity
    /// property to hold at all times (true for perpetual exploration and
    /// graph searching, false for gathering).
    fn requires_exclusivity(&self) -> bool {
        true
    }

    /// The Compute phase: map the snapshot taken during Look to a decision.
    fn compute(&self, snapshot: &Snapshot) -> Decision;

    /// Attempts to certify the next rounds of this protocol on `config` as a
    /// [`LeapPlan`]: constant per-node velocities valid for `plan.horizon`
    /// full rounds (see the contract in [`crate::leap`]).
    ///
    /// `first_dir` is the engine's current first reading direction (so tie
    /// decisions resolve exactly as [`Protocol::compute`] would) and
    /// `capability` is the multiplicity capability the engine actually
    /// grants snapshots — a certificate whose decisions depend on
    /// multiplicity detection must decline when it is missing.
    ///
    /// The default declines (`false`), which degrades
    /// [`StepPath::Leap`](crate::engine::StepPath) to ordinary stepping;
    /// implementations must leave `plan` cleared or fully written.
    fn leap_plan(
        &self,
        config: &Configuration,
        first_dir: Direction,
        capability: MultiplicityCapability,
        plan: &mut LeapPlan,
    ) -> bool {
        let _ = (config, first_dir, capability, plan);
        false
    }
}

/// A protocol that never moves; useful as a baseline and in scheduler tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdleProtocol;

impl Protocol for IdleProtocol {
    fn name(&self) -> &str {
        "idle"
    }

    fn compute(&self, _snapshot: &Snapshot) -> Decision {
        Decision::Idle
    }

    fn leap_plan(
        &self,
        _config: &Configuration,
        _first_dir: Direction,
        _capability: MultiplicityCapability,
        plan: &mut LeapPlan,
    ) -> bool {
        // Nobody ever moves, so the (empty) velocity map holds forever.
        plan.clear();
        plan.horizon = u64::MAX;
        true
    }
}

/// A baseline protocol that always moves towards its larger adjacent interval
/// (ties broken towards the first view).  It is *not* a correct algorithm for
/// any of the paper's tasks; it exists to exercise the simulator and the
/// monitors, and as the "single walker" baseline discussed in Section 4.1
/// (one robot walking forever explores but never clears).
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyGapWalker;

impl Protocol for GreedyGapWalker {
    fn name(&self) -> &str {
        "greedy-gap-walker"
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        let a = snapshot.views[0].gap(0);
        let b = snapshot.views[1].gap(0);
        if a == 0 && b == 0 {
            Decision::Idle
        } else if a >= b {
            Decision::Move(ViewIndex::First)
        } else {
            Decision::Move(ViewIndex::Second)
        }
    }

    fn leap_plan(
        &self,
        config: &Configuration,
        first_dir: Direction,
        _capability: MultiplicityCapability,
        plan: &mut LeapPlan,
    ) -> bool {
        plan.clear();
        let k = config.num_occupied();
        let anchor = config.occupied_anchor();
        // Pass 1: per-node velocity from the two adjacent gaps (the walker's
        // whole decision input).  Velocities are pushed in clockwise cycle
        // order so pass 2 can read neighbouring velocities by index.
        for v in config.occupied_cycle(anchor, Direction::Cw) {
            let gap = |dir| {
                let next = config.occupied_after(v, dir);
                if next == v {
                    // k = 1: the self-loop cycle leaves the whole ring free.
                    config.n() - 1
                } else {
                    match dir {
                        Direction::Cw => (next + config.n() - v - 1) % config.n(),
                        Direction::Ccw => (v + config.n() - next - 1) % config.n(),
                    }
                }
            };
            let (g_cw, g_ccw) = (gap(Direction::Cw), gap(Direction::Ccw));
            let vel: i8 = if g_cw == 0 && g_ccw == 0 {
                0
            } else if g_cw > g_ccw || (g_cw == g_ccw && first_dir == Direction::Cw) {
                1
            } else if g_ccw > g_cw || first_dir == Direction::Ccw {
                -1
            } else {
                0
            };
            plan.velocities.push((v, vel));
        }
        // Pass 2: horizon = how long every decision input keeps its sign and
        // every gap stays physical (no two robots entering the same node).
        let mut horizon = u64::MAX;
        for i in 0..k {
            let (node, vel) = plan.velocities[i];
            let vel_cw_next = plan.velocities[(i + 1) % k].1;
            let vel_ccw_prev = plan.velocities[(i + k - 1) % k].1;
            let next = config.occupied_after(node, Direction::Cw);
            let g = if next == node {
                config.n() - 1
            } else {
                (next + config.n() - node - 1) % config.n()
            } as i64;
            // Gap i (clockwise, between cycle nodes i and i+1) changes by
            // the velocity difference each round; it must stay >= 0 after
            // every executed round or two robots have crossed into the same
            // node.
            let r = i64::from(vel_cw_next) - i64::from(vel);
            horizon = horizon.min(rounds_at_least(g + r, r, 0));
            // Decision stability for the robot(s) on `node`, in terms of its
            // clockwise gap a = g and counter-clockwise gap b.
            let prev = config.occupied_after(node, Direction::Ccw);
            let b = if prev == node {
                config.n() - 1
            } else {
                (node + config.n() - prev - 1) % config.n()
            } as i64;
            let ra = r;
            let rb = i64::from(vel) - i64::from(vel_ccw_prev);
            let (first, second, rf, rs) = if first_dir == Direction::Cw {
                (g, b, ra, rb)
            } else {
                (b, g, rb, ra)
            };
            let stable = if vel == 0 {
                // Idle requires both gaps to stay exactly zero.
                rounds_exactly(g, ra, 0).min(rounds_exactly(b, rb, 0))
            } else if first >= second {
                // Move(First): needs first >= second and first >= 1.
                rounds_at_least(first - second, rf - rs, 0).min(rounds_at_least(first, rf, 1))
            } else {
                // Move(Second): needs second > first (which implies >= 1).
                rounds_at_least(second - first, rs - rf, 1)
            };
            horizon = horizon.min(stable);
        }
        plan.horizon = horizon;
        horizon > 0
    }
}

impl<P: Protocol + ?Sized> Protocol for &P {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn capability(&self) -> MultiplicityCapability {
        (**self).capability()
    }

    fn requires_exclusivity(&self) -> bool {
        (**self).requires_exclusivity()
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        (**self).compute(snapshot)
    }

    fn leap_plan(
        &self,
        config: &Configuration,
        first_dir: Direction,
        capability: MultiplicityCapability,
        plan: &mut LeapPlan,
    ) -> bool {
        (**self).leap_plan(config, first_dir, capability, plan)
    }
}

impl<P: Protocol + ?Sized> Protocol for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn capability(&self) -> MultiplicityCapability {
        (**self).capability()
    }

    fn requires_exclusivity(&self) -> bool {
        (**self).requires_exclusivity()
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        (**self).compute(snapshot)
    }

    fn leap_plan(
        &self,
        config: &Configuration,
        first_dir: Direction,
        capability: MultiplicityCapability,
        plan: &mut LeapPlan,
    ) -> bool {
        (**self).leap_plan(config, first_dir, capability, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_ring::{Configuration, Direction};

    #[test]
    fn view_index_helpers() {
        assert_eq!(ViewIndex::First.index(), 0);
        assert_eq!(ViewIndex::Second.index(), 1);
        assert_eq!(ViewIndex::First.other(), ViewIndex::Second);
        assert_eq!(ViewIndex::Second.other(), ViewIndex::First);
    }

    #[test]
    fn idle_protocol_never_moves() {
        let c = Configuration::from_gaps_at_origin(&[0, 1, 2, 5]);
        for v in c.occupied_nodes() {
            let s = Snapshot::capture(&c, v, MultiplicityCapability::None, Direction::Cw);
            assert_eq!(IdleProtocol.compute(&s), Decision::Idle);
        }
    }

    #[test]
    fn greedy_walker_prefers_larger_gap() {
        let c = Configuration::from_gaps_at_origin(&[0, 1, 2, 5]);
        // The robot between the gap of 5 and the gap of 0 must walk into the 5.
        let occ = c.occupied_nodes();
        let last = occ[0]; // node 0 has gap 0 cw ... compute decision directly
        let s = Snapshot::capture(&c, last, MultiplicityCapability::None, Direction::Cw);
        let d = GreedyGapWalker.compute(&s);
        // gap cw from node 0 is 0, ccw is 5 → move to the second view.
        assert_eq!(d, Decision::Move(ViewIndex::Second));
    }

    #[test]
    fn greedy_walker_is_direction_insensitive() {
        let c = Configuration::from_gaps_at_origin(&[0, 1, 2, 5]);
        for v in c.occupied_nodes() {
            let cw = Snapshot::capture(&c, v, MultiplicityCapability::None, Direction::Cw);
            let ccw = Snapshot::capture(&c, v, MultiplicityCapability::None, Direction::Ccw);
            let dcw = GreedyGapWalker.compute(&cw);
            let dccw = GreedyGapWalker.compute(&ccw);
            // The physical direction must coincide: view 0 of one snapshot is
            // view 1 of the other.
            match (dcw, dccw) {
                (Decision::Idle, Decision::Idle) => {}
                (Decision::Move(a), Decision::Move(b)) => {
                    // Equal gaps on both sides make either answer acceptable.
                    if cw.views[0].gap(0) != cw.views[1].gap(0) {
                        assert_eq!(a.index(), 1 - b.index());
                    }
                }
                other => panic!("inconsistent decisions {other:?}"),
            }
        }
    }

    #[test]
    fn idle_certificate_holds_forever() {
        let c = Configuration::from_gaps_at_origin(&[0, 1, 2, 5]);
        let mut plan = LeapPlan::default();
        assert!(IdleProtocol.leap_plan(&c, Direction::Cw, MultiplicityCapability::None, &mut plan));
        assert_eq!(plan.horizon, u64::MAX);
        assert!(plan.velocities.is_empty());
    }

    #[test]
    fn greedy_walker_certificate_matches_fresh_decisions() {
        use rr_ring::Ring;
        for gaps in [
            &[0usize, 1, 2, 5][..],
            &[1, 1, 4],
            &[3, 0, 2, 0, 6],
            &[2, 2, 2],
            &[11],
        ] {
            for first_dir in [Direction::Cw, Direction::Ccw] {
                let c = Configuration::from_gaps_at_origin(gaps);
                let n = c.n();
                let mut plan = LeapPlan::default();
                assert!(
                    GreedyGapWalker.leap_plan(
                        &c,
                        first_dir,
                        MultiplicityCapability::None,
                        &mut plan
                    ),
                    "walker plans always certify at least one round ({gaps:?})"
                );
                assert!(plan.horizon >= 1);
                // Track each node group along its planned velocity and check
                // that a fresh Compute agrees at the start of every round of
                // the horizon.
                let mut groups: Vec<(usize, i8, u32)> = plan
                    .velocities
                    .iter()
                    .map(|&(v, vel)| (v, vel, c.count_at(v)))
                    .collect();
                let mut c = c;
                for round in 0..plan.horizon.min(24) {
                    for &(v, vel, _) in &groups {
                        let s = Snapshot::capture(&c, v, MultiplicityCapability::None, first_dir);
                        let expected = match (vel, first_dir) {
                            (0, _) => Decision::Idle,
                            (1, Direction::Cw) | (-1, Direction::Ccw) => {
                                Decision::Move(ViewIndex::First)
                            }
                            _ => Decision::Move(ViewIndex::Second),
                        };
                        assert_eq!(
                            GreedyGapWalker.compute(&s),
                            expected,
                            "{gaps:?} {first_dir:?} round {round} node {v}"
                        );
                    }
                    let mut counts = vec![0u32; n];
                    for (v, vel, count) in &mut groups {
                        *v = (*v + n).wrapping_add_signed(isize::from(*vel)) % n;
                        counts[*v] += *count;
                    }
                    c = Configuration::from_counts(Ring::new(n), counts).unwrap();
                }
            }
        }
    }

    #[test]
    fn blanket_impls_delegate() {
        let c = Configuration::from_gaps_at_origin(&[1, 1, 4]);
        let s = Snapshot::capture(&c, 0, MultiplicityCapability::None, Direction::Cw);
        let boxed: Box<dyn Protocol> = Box::new(IdleProtocol);
        assert_eq!(boxed.compute(&s), Decision::Idle);
        assert_eq!(boxed.name(), "idle");
        let by_ref = &IdleProtocol;
        assert_eq!(Protocol::compute(&by_ref, &s), Decision::Idle);
        assert!(by_ref.requires_exclusivity());
        assert_eq!(by_ref.capability(), MultiplicityCapability::None);
    }
}
