//! The protocol abstraction: what an anonymous, oblivious, uniform robot may
//! compute from its snapshot.

use serde::{Deserialize, Serialize};

use crate::snapshot::{MultiplicityCapability, Snapshot};

/// Index into [`Snapshot::views`]: identifies one of the robot's two reading
/// directions *relative to the snapshot*, never a global orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ViewIndex {
    /// The direction of `snapshot.views[0]`.
    First,
    /// The direction of `snapshot.views[1]`.
    Second,
}

impl ViewIndex {
    /// The two indices.
    pub const BOTH: [ViewIndex; 2] = [ViewIndex::First, ViewIndex::Second];

    /// Numeric index (0 or 1).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            ViewIndex::First => 0,
            ViewIndex::Second => 1,
        }
    }

    /// The other index.
    #[must_use]
    pub fn other(self) -> ViewIndex {
        match self {
            ViewIndex::First => ViewIndex::Second,
            ViewIndex::Second => ViewIndex::First,
        }
    }
}

/// Outcome of the Compute phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// Stay idle this cycle.
    Idle,
    /// Move one step towards the first interval of the indicated view, i.e. in
    /// the reading direction of that view.
    Move(ViewIndex),
}

impl Decision {
    /// Whether the decision is a move.
    #[must_use]
    pub fn is_move(&self) -> bool {
        matches!(self, Decision::Move(_))
    }
}

/// A min-CORDA protocol: a deterministic function of the local snapshot.
///
/// Implementations must be:
///
/// * **uniform** — the same object is shared by every robot;
/// * **oblivious** — `compute` must not retain state between calls (the trait
///   takes `&self` to make accidental state mutation impossible without
///   interior mutability);
/// * **disorientation-safe** — swapping the two views of the snapshot must
///   yield the physically identical decision (this is checked for the paper's
///   protocols in the test suites).
pub trait Protocol {
    /// Human-readable name (used in traces, experiment output and errors).
    fn name(&self) -> &str;

    /// The multiplicity-detection capability this protocol requires.
    fn capability(&self) -> MultiplicityCapability {
        MultiplicityCapability::None
    }

    /// Whether the task solved by this protocol requires the exclusivity
    /// property to hold at all times (true for perpetual exploration and
    /// graph searching, false for gathering).
    fn requires_exclusivity(&self) -> bool {
        true
    }

    /// The Compute phase: map the snapshot taken during Look to a decision.
    fn compute(&self, snapshot: &Snapshot) -> Decision;
}

/// A protocol that never moves; useful as a baseline and in scheduler tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdleProtocol;

impl Protocol for IdleProtocol {
    fn name(&self) -> &str {
        "idle"
    }

    fn compute(&self, _snapshot: &Snapshot) -> Decision {
        Decision::Idle
    }
}

/// A baseline protocol that always moves towards its larger adjacent interval
/// (ties broken towards the first view).  It is *not* a correct algorithm for
/// any of the paper's tasks; it exists to exercise the simulator and the
/// monitors, and as the "single walker" baseline discussed in Section 4.1
/// (one robot walking forever explores but never clears).
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyGapWalker;

impl Protocol for GreedyGapWalker {
    fn name(&self) -> &str {
        "greedy-gap-walker"
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        let a = snapshot.views[0].gap(0);
        let b = snapshot.views[1].gap(0);
        if a == 0 && b == 0 {
            Decision::Idle
        } else if a >= b {
            Decision::Move(ViewIndex::First)
        } else {
            Decision::Move(ViewIndex::Second)
        }
    }
}

impl<P: Protocol + ?Sized> Protocol for &P {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn capability(&self) -> MultiplicityCapability {
        (**self).capability()
    }

    fn requires_exclusivity(&self) -> bool {
        (**self).requires_exclusivity()
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        (**self).compute(snapshot)
    }
}

impl<P: Protocol + ?Sized> Protocol for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn capability(&self) -> MultiplicityCapability {
        (**self).capability()
    }

    fn requires_exclusivity(&self) -> bool {
        (**self).requires_exclusivity()
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        (**self).compute(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_ring::{Configuration, Direction};

    #[test]
    fn view_index_helpers() {
        assert_eq!(ViewIndex::First.index(), 0);
        assert_eq!(ViewIndex::Second.index(), 1);
        assert_eq!(ViewIndex::First.other(), ViewIndex::Second);
        assert_eq!(ViewIndex::Second.other(), ViewIndex::First);
    }

    #[test]
    fn idle_protocol_never_moves() {
        let c = Configuration::from_gaps_at_origin(&[0, 1, 2, 5]);
        for v in c.occupied_nodes() {
            let s = Snapshot::capture(&c, v, MultiplicityCapability::None, Direction::Cw);
            assert_eq!(IdleProtocol.compute(&s), Decision::Idle);
        }
    }

    #[test]
    fn greedy_walker_prefers_larger_gap() {
        let c = Configuration::from_gaps_at_origin(&[0, 1, 2, 5]);
        // The robot between the gap of 5 and the gap of 0 must walk into the 5.
        let occ = c.occupied_nodes();
        let last = occ[0]; // node 0 has gap 0 cw ... compute decision directly
        let s = Snapshot::capture(&c, last, MultiplicityCapability::None, Direction::Cw);
        let d = GreedyGapWalker.compute(&s);
        // gap cw from node 0 is 0, ccw is 5 → move to the second view.
        assert_eq!(d, Decision::Move(ViewIndex::Second));
    }

    #[test]
    fn greedy_walker_is_direction_insensitive() {
        let c = Configuration::from_gaps_at_origin(&[0, 1, 2, 5]);
        for v in c.occupied_nodes() {
            let cw = Snapshot::capture(&c, v, MultiplicityCapability::None, Direction::Cw);
            let ccw = Snapshot::capture(&c, v, MultiplicityCapability::None, Direction::Ccw);
            let dcw = GreedyGapWalker.compute(&cw);
            let dccw = GreedyGapWalker.compute(&ccw);
            // The physical direction must coincide: view 0 of one snapshot is
            // view 1 of the other.
            match (dcw, dccw) {
                (Decision::Idle, Decision::Idle) => {}
                (Decision::Move(a), Decision::Move(b)) => {
                    // Equal gaps on both sides make either answer acceptable.
                    if cw.views[0].gap(0) != cw.views[1].gap(0) {
                        assert_eq!(a.index(), 1 - b.index());
                    }
                }
                other => panic!("inconsistent decisions {other:?}"),
            }
        }
    }

    #[test]
    fn blanket_impls_delegate() {
        let c = Configuration::from_gaps_at_origin(&[1, 1, 4]);
        let s = Snapshot::capture(&c, 0, MultiplicityCapability::None, Direction::Cw);
        let boxed: Box<dyn Protocol> = Box::new(IdleProtocol);
        assert_eq!(boxed.compute(&s), Decision::Idle);
        assert_eq!(boxed.name(), "idle");
        let by_ref = &IdleProtocol;
        assert_eq!(Protocol::compute(&by_ref, &s), Decision::Idle);
        assert!(by_ref.requires_exclusivity());
        assert_eq!(by_ref.capability(), MultiplicityCapability::None);
    }
}
