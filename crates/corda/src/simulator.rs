//! The simulation engine: owns the configuration, executes Look–Compute–Move
//! cycles and enforces the model's rules (instantaneous moves, exclusivity
//! when required, pending moves under asynchrony).

use rr_ring::{Configuration, Direction, NodeId, Ring};
use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::protocol::{Decision, Protocol, ViewIndex};
use crate::robot::{Phase, RobotId, RobotState};
use crate::scheduler::{Scheduler, SchedulerStep, SchedulerView};
use crate::snapshot::{MultiplicityCapability, Snapshot};
use crate::trace::{Event, Trace};

/// Which global direction is presented as `views[0]` of a snapshot.
///
/// Correct protocols must be insensitive to this; the option exists so tests
/// can verify that insensitivity and so the adversary can be as nasty as the
/// model allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ViewOrder {
    /// Always present the clockwise view first (deterministic default).
    #[default]
    CwFirst,
    /// Always present the counter-clockwise view first.
    CcwFirst,
    /// Alternate between the two on successive Look operations.
    Alternating,
}

/// Options controlling a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulatorOptions {
    /// The multiplicity-detection capability granted to the robots.
    pub capability: MultiplicityCapability,
    /// Whether a move onto an occupied node is a fatal error (true for the
    /// exclusive tasks, false for gathering).
    pub enforce_exclusivity: bool,
    /// Whether to record an event [`Trace`].
    pub record_trace: bool,
    /// Snapshot view ordering policy.
    pub view_order: ViewOrder,
}

impl Default for SimulatorOptions {
    fn default() -> Self {
        SimulatorOptions {
            capability: MultiplicityCapability::None,
            enforce_exclusivity: true,
            record_trace: false,
            view_order: ViewOrder::CwFirst,
        }
    }
}

impl SimulatorOptions {
    /// Options suitable for a given protocol: capability and exclusivity are
    /// taken from the protocol's declaration.
    #[must_use]
    pub fn for_protocol<P: Protocol + ?Sized>(protocol: &P) -> Self {
        SimulatorOptions {
            capability: protocol.capability(),
            enforce_exclusivity: protocol.requires_exclusivity(),
            ..SimulatorOptions::default()
        }
    }

    /// Enables trace recording.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Sets the view ordering policy.
    #[must_use]
    pub fn with_view_order(mut self, order: ViewOrder) -> Self {
        self.view_order = order;
        self
    }
}

/// Record of one executed move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveRecord {
    /// The robot that moved.
    pub robot: RobotId,
    /// Node it left.
    pub from: NodeId,
    /// Node it reached.
    pub to: NodeId,
    /// Global step counter at which the move completed.
    pub step: u64,
}

/// Why a [`Simulator::run`] loop stopped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The user-supplied stop condition became true.
    ConditionMet,
    /// The step budget was exhausted before the stop condition held.
    StepBudgetExhausted,
    /// The simulation failed (e.g. an exclusivity violation).
    Failed(SimError),
}

/// Summary of a [`Simulator::run`] loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// Why the loop stopped.
    pub outcome: RunOutcome,
    /// Number of scheduler steps executed.
    pub steps: u64,
    /// Number of robot moves executed.
    pub moves: u64,
}

impl RunReport {
    /// Whether the run stopped because the stop condition was met.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        matches!(self.outcome, RunOutcome::ConditionMet)
    }
}

/// The Look–Compute–Move simulator.
#[derive(Debug, Clone)]
pub struct Simulator<P> {
    protocol: P,
    ring: Ring,
    config: Configuration,
    robots: Vec<RobotState>,
    options: SimulatorOptions,
    trace: Trace,
    step: u64,
    moves: u64,
    looks: u64,
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulator for `protocol` starting from `initial`.
    ///
    /// One robot is created per unit of multiplicity of the initial
    /// configuration; robots on the same node receive consecutive ids.
    pub fn new(protocol: P, initial: Configuration, options: SimulatorOptions) -> Result<Self, SimError> {
        if options.enforce_exclusivity && !initial.is_exclusive() {
            return Err(SimError::BadInitialConfiguration {
                reason: "exclusivity is required but the initial configuration has a multiplicity"
                    .to_string(),
            });
        }
        let mut robots = Vec::with_capacity(initial.num_robots());
        for v in initial.occupied_nodes() {
            for _ in 0..initial.count_at(v) {
                robots.push(RobotState::new(v));
            }
        }
        if robots.is_empty() {
            return Err(SimError::BadInitialConfiguration {
                reason: "no robot in the initial configuration".to_string(),
            });
        }
        let trace = if options.record_trace { Trace::recording() } else { Trace::disabled() };
        Ok(Simulator {
            protocol,
            ring: initial.ring(),
            config: initial,
            robots,
            options,
            trace,
            step: 0,
            moves: 0,
            looks: 0,
        })
    }

    /// Creates a simulator with the options implied by the protocol
    /// declaration (capability + exclusivity).
    pub fn with_default_options(protocol: P, initial: Configuration) -> Result<Self, SimError> {
        let options = SimulatorOptions::for_protocol(&protocol);
        Simulator::new(protocol, initial, options)
    }

    /// The current configuration.
    #[must_use]
    pub fn configuration(&self) -> &Configuration {
        &self.config
    }

    /// The underlying ring.
    #[must_use]
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// The protocol under simulation.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Number of robots.
    #[must_use]
    pub fn num_robots(&self) -> usize {
        self.robots.len()
    }

    /// Per-robot simulator state.
    #[must_use]
    pub fn robots(&self) -> &[RobotState] {
        &self.robots
    }

    /// Current node of each robot, indexed by robot id.
    #[must_use]
    pub fn positions(&self) -> Vec<NodeId> {
        self.robots.iter().map(|r| r.node).collect()
    }

    /// Global step counter (incremented once per Look and once per
    /// Move/Idle execution).
    #[must_use]
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Total number of moves executed so far.
    #[must_use]
    pub fn move_count(&self) -> u64 {
        self.moves
    }

    /// Total number of Look operations executed so far.
    #[must_use]
    pub fn look_count(&self) -> u64 {
        self.looks
    }

    /// The recorded trace (empty unless trace recording was enabled).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Simulator options.
    #[must_use]
    pub fn options(&self) -> &SimulatorOptions {
        &self.options
    }

    fn check_robot(&self, robot: RobotId) -> Result<(), SimError> {
        if robot >= self.robots.len() {
            Err(SimError::UnknownRobot { robot, k: self.robots.len() })
        } else {
            Ok(())
        }
    }

    fn first_direction(&self) -> Direction {
        match self.options.view_order {
            ViewOrder::CwFirst => Direction::Cw,
            ViewOrder::CcwFirst => Direction::Ccw,
            ViewOrder::Alternating => {
                if self.looks % 2 == 0 {
                    Direction::Cw
                } else {
                    Direction::Ccw
                }
            }
        }
    }

    /// Performs the Look and Compute phases of `robot`: takes a snapshot of
    /// the **current** configuration and stores the resulting pending action.
    ///
    /// If the robot already has a pending action, the call is a no-op (the
    /// CORDA model never lets a robot look twice without moving in between).
    pub fn look_compute(&mut self, robot: RobotId) -> Result<Decision, SimError> {
        self.check_robot(robot)?;
        if self.robots[robot].has_pending() {
            // Already computed: report the pending decision without re-looking.
            let decision = match self.robots[robot].phase {
                Phase::MovePending { target } => {
                    let dir = if self.ring.neighbor(self.robots[robot].node, Direction::Cw) == target
                    {
                        ViewIndex::First
                    } else {
                        ViewIndex::Second
                    };
                    Decision::Move(dir)
                }
                Phase::IdlePending => Decision::Idle,
                Phase::Ready => unreachable!("has_pending() checked"),
            };
            return Ok(decision);
        }
        let node = self.robots[robot].node;
        let first_dir = self.first_direction();
        let snapshot = Snapshot::capture(&self.config, node, self.options.capability, first_dir);
        let decision = self.protocol.compute(&snapshot);
        self.looks += 1;
        self.step += 1;
        match decision {
            Decision::Idle => {
                self.robots[robot].phase = Phase::IdlePending;
            }
            Decision::Move(idx) => {
                let dir = match idx {
                    ViewIndex::First => first_dir,
                    ViewIndex::Second => first_dir.opposite(),
                };
                let target = self.ring.neighbor(node, dir);
                self.robots[robot].phase = Phase::MovePending { target };
            }
        }
        self.trace.push(Event::Looked {
            robot,
            step: self.step,
            decided_to_move: decision.is_move(),
        });
        Ok(decision)
    }

    /// Executes the pending action of `robot` (the Move phase).
    ///
    /// Returns `Ok(Some(record))` if a move was performed, `Ok(None)` if the
    /// robot had a pending idle decision or nothing pending at all.
    pub fn execute_move(&mut self, robot: RobotId) -> Result<Option<MoveRecord>, SimError> {
        self.check_robot(robot)?;
        match self.robots[robot].phase {
            Phase::Ready => Ok(None),
            Phase::IdlePending => {
                self.step += 1;
                self.robots[robot].phase = Phase::Ready;
                self.robots[robot].cycles += 1;
                self.trace.push(Event::StayedIdle { robot, step: self.step });
                Ok(None)
            }
            Phase::MovePending { target } => {
                let from = self.robots[robot].node;
                if self.options.enforce_exclusivity && self.config.is_occupied(target) {
                    return Err(SimError::ExclusivityViolation { robot, node: target });
                }
                self.config
                    .move_robot(from, target)
                    .map_err(|e| SimError::InvalidMove { reason: e.to_string() })?;
                self.step += 1;
                self.moves += 1;
                self.robots[robot].node = target;
                self.robots[robot].phase = Phase::Ready;
                self.robots[robot].cycles += 1;
                self.robots[robot].moves += 1;
                let record = MoveRecord { robot, from, to: target, step: self.step };
                self.trace.push(Event::Moved { robot, from, to: target, step: self.step });
                Ok(Some(record))
            }
        }
    }

    /// Performs a full, atomic Look–Compute–Move cycle for `robot`.
    pub fn activate(&mut self, robot: RobotId) -> Result<Option<MoveRecord>, SimError> {
        self.look_compute(robot)?;
        self.execute_move(robot)
    }

    /// Performs a semi-synchronous round: all listed robots Look and Compute
    /// on the same configuration, then all of them execute their action.
    ///
    /// Robots that already had a pending action keep it (they do not re-look),
    /// matching the CORDA semantics where a pending move can be arbitrarily
    /// delayed but never recomputed.
    pub fn ssync_round(&mut self, robots: &[RobotId]) -> Result<Vec<MoveRecord>, SimError> {
        for &r in robots {
            self.look_compute(r)?;
        }
        let mut records = Vec::new();
        for &r in robots {
            if let Some(rec) = self.execute_move(r)? {
                records.push(rec);
            }
        }
        Ok(records)
    }

    /// Applies one scheduler step.
    pub fn apply(&mut self, step: &SchedulerStep) -> Result<Vec<MoveRecord>, SimError> {
        match step {
            SchedulerStep::SsyncRound(robots) => self.ssync_round(robots),
            SchedulerStep::Look(robot) => {
                self.look_compute(*robot)?;
                Ok(Vec::new())
            }
            SchedulerStep::Execute(robot) => {
                Ok(self.execute_move(*robot)?.into_iter().collect())
            }
        }
    }

    /// A scheduler-facing summary of the current state.
    #[must_use]
    pub fn scheduler_view(&self) -> SchedulerView {
        SchedulerView {
            step: self.step,
            pending: self.robots.iter().map(RobotState::has_pending).collect(),
            pending_moves: self.robots.iter().map(RobotState::has_pending_move).collect(),
            num_robots: self.robots.len(),
        }
    }

    /// Drives the simulation with `scheduler` until `stop` returns true or
    /// `max_scheduler_steps` scheduler steps have been applied.
    ///
    /// `on_move` is called after every executed move, with the move record and
    /// the configuration *after* the move; this is how the `rr-search`
    /// monitors (contamination, exploration, gathering) observe the run.
    pub fn run<S, F, G>(
        &mut self,
        scheduler: &mut S,
        max_scheduler_steps: u64,
        mut stop: F,
        mut on_move: G,
    ) -> RunReport
    where
        S: Scheduler + ?Sized,
        F: FnMut(&Simulator<P>) -> bool,
        G: FnMut(&MoveRecord, &Configuration),
    {
        let mut steps = 0u64;
        let moves_before = self.moves;
        loop {
            if stop(self) {
                return RunReport {
                    outcome: RunOutcome::ConditionMet,
                    steps,
                    moves: self.moves - moves_before,
                };
            }
            if steps >= max_scheduler_steps {
                return RunReport {
                    outcome: RunOutcome::StepBudgetExhausted,
                    steps,
                    moves: self.moves - moves_before,
                };
            }
            let step = scheduler.next(&self.scheduler_view());
            match self.apply(&step) {
                Ok(records) => {
                    for rec in &records {
                        on_move(rec, &self.config);
                    }
                }
                Err(e) => {
                    return RunReport {
                        outcome: RunOutcome::Failed(e),
                        steps,
                        moves: self.moves - moves_before,
                    }
                }
            }
            steps += 1;
        }
    }

    /// Convenience wrapper around [`Simulator::run`] without a move callback.
    pub fn run_until<S, F>(&mut self, scheduler: &mut S, max_steps: u64, stop: F) -> RunReport
    where
        S: Scheduler + ?Sized,
        F: FnMut(&Simulator<P>) -> bool,
    {
        self.run(scheduler, max_steps, stop, |_, _| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{GreedyGapWalker, IdleProtocol};
    use crate::scheduler::RoundRobinScheduler;
    use rr_ring::Configuration;

    fn cfg(gaps: &[usize]) -> Configuration {
        Configuration::from_gaps_at_origin(gaps)
    }

    #[test]
    fn construction_places_one_robot_per_unit_of_multiplicity() {
        let ring = Ring::new(8);
        let c = Configuration::from_counts(ring, vec![2, 0, 1, 0, 0, 0, 0, 0]).unwrap();
        let sim = Simulator::new(
            IdleProtocol,
            c,
            SimulatorOptions { enforce_exclusivity: false, ..Default::default() },
        )
        .unwrap();
        assert_eq!(sim.num_robots(), 3);
        assert_eq!(sim.positions(), vec![0, 0, 2]);
    }

    #[test]
    fn exclusivity_is_checked_at_construction() {
        let ring = Ring::new(8);
        let c = Configuration::from_counts(ring, vec![2, 0, 1, 0, 0, 0, 0, 0]).unwrap();
        let err = Simulator::new(IdleProtocol, c, SimulatorOptions::default()).unwrap_err();
        assert!(matches!(err, SimError::BadInitialConfiguration { .. }));
    }

    #[test]
    fn idle_protocol_never_changes_configuration() {
        let c = cfg(&[0, 1, 2, 5]);
        let mut sim = Simulator::with_default_options(IdleProtocol, c.clone()).unwrap();
        for r in 0..sim.num_robots() {
            let rec = sim.activate(r).unwrap();
            assert!(rec.is_none());
        }
        assert_eq!(sim.configuration(), &c);
        assert_eq!(sim.move_count(), 0);
        assert!(sim.robots().iter().all(|r| r.cycles == 1));
    }

    #[test]
    fn greedy_walker_moves_and_is_traced() {
        let c = cfg(&[3, 4]); // two robots, gaps 3 and 4 on a 9-ring
        let options = SimulatorOptions::for_protocol(&GreedyGapWalker).with_trace();
        let mut sim = Simulator::new(GreedyGapWalker, c, options).unwrap();
        let rec = sim.activate(0).unwrap().expect("robot 0 moves");
        assert_eq!(rec.robot, 0);
        assert_eq!(sim.move_count(), 1);
        assert_eq!(sim.trace().len(), 2); // Looked + Moved
        assert_eq!(sim.trace().moves().count(), 1);
    }

    #[test]
    fn pending_moves_use_outdated_snapshots() {
        // Robot 0 looks, then robot 1 moves, then robot 0 executes its stale move.
        let c = cfg(&[1, 1, 4]); // robots at 0, 2, 4 on a 9-ring
        let mut sim = Simulator::new(
            GreedyGapWalker,
            c,
            SimulatorOptions { enforce_exclusivity: false, ..Default::default() },
        )
        .unwrap();
        sim.look_compute(0).unwrap();
        let before = sim.positions();
        sim.activate(2).unwrap();
        // Robot 0 still executes the move it computed before robot 2 moved.
        let rec = sim.execute_move(0).unwrap().expect("stale move still executes");
        assert_eq!(rec.from, before[0]);
    }

    #[test]
    fn double_look_does_not_recompute() {
        let c = cfg(&[3, 4]);
        let mut sim = Simulator::with_default_options(GreedyGapWalker, c).unwrap();
        let d1 = sim.look_compute(0).unwrap();
        let looks = sim.look_count();
        let d2 = sim.look_compute(0).unwrap();
        assert_eq!(sim.look_count(), looks, "second look is a no-op");
        assert_eq!(d1.is_move(), d2.is_move());
    }

    #[test]
    fn exclusivity_violation_is_reported() {
        // Two adjacent robots walking towards each other's node.
        #[derive(Debug)]
        struct TowardsOther;
        impl Protocol for TowardsOther {
            fn name(&self) -> &str {
                "towards-other"
            }
            fn compute(&self, snapshot: &Snapshot) -> Decision {
                // Move towards the closer occupied node.
                let a = snapshot.views[0].gap(0);
                let b = snapshot.views[1].gap(0);
                if a <= b {
                    Decision::Move(ViewIndex::First)
                } else {
                    Decision::Move(ViewIndex::Second)
                }
            }
        }
        let c = cfg(&[0, 6]); // adjacent robots on an 8-ring
        let mut sim = Simulator::with_default_options(TowardsOther, c).unwrap();
        let err = sim.activate(0).unwrap_err();
        assert!(matches!(err, SimError::ExclusivityViolation { .. }));
    }

    #[test]
    fn ssync_round_looks_before_moving() {
        // Under a fully synchronous round both adjacent robots see each other
        // *before* either moves; with the greedy walker both walk away from
        // each other into their larger gaps — no collision.
        let c = cfg(&[0, 6]);
        let mut sim = Simulator::with_default_options(GreedyGapWalker, c).unwrap();
        let records = sim.ssync_round(&[0, 1]).unwrap();
        assert_eq!(records.len(), 2);
        assert!(sim.configuration().is_exclusive());
    }

    #[test]
    fn run_until_stops_on_condition() {
        let c = cfg(&[0, 1, 2, 5]);
        let mut sim = Simulator::with_default_options(GreedyGapWalker, c).unwrap();
        let mut sched = RoundRobinScheduler::new();
        let report = sim.run_until(&mut sched, 1000, |s| s.move_count() >= 5);
        assert!(report.succeeded());
        assert_eq!(sim.move_count(), 5);
    }

    #[test]
    fn run_reports_step_budget_exhaustion() {
        let c = cfg(&[0, 1, 2, 5]);
        let mut sim = Simulator::with_default_options(IdleProtocol, c).unwrap();
        let mut sched = RoundRobinScheduler::new();
        let report = sim.run_until(&mut sched, 17, |_| false);
        assert_eq!(report.outcome, RunOutcome::StepBudgetExhausted);
        assert_eq!(report.steps, 17);
        assert_eq!(report.moves, 0);
    }

    #[test]
    fn unknown_robot_is_rejected() {
        let c = cfg(&[0, 1, 2, 5]);
        let mut sim = Simulator::with_default_options(IdleProtocol, c).unwrap();
        assert!(matches!(sim.look_compute(99), Err(SimError::UnknownRobot { .. })));
        assert!(matches!(sim.execute_move(99), Err(SimError::UnknownRobot { .. })));
    }
}
