//! The generic task driver: **one** run loop for every task of the paper.
//!
//! Historically each task had its own copy of the same loop (build a
//! simulator, hook up its observers through a `RefCell`, run, unpack the
//! statistics).  This module replaces them with two functions:
//!
//! * [`drive_with`] (and its pre-built-monitor shim [`drive`]) — the single
//!   engine-driving loop: construct an [`Engine`] with the
//!   options declared by the protocol, build the observer from the
//!   constructed engine, run under a scheduler, and surface simulation
//!   failures as errors;
//! * [`run_task`] — the task-level driver: given a [`Task`] and a protocol it
//!   picks the right monitor and stop condition and returns per-task
//!   statistics.  The public wrappers `run_searching`, `run_gathering` and
//!   `run_to_c_star` are thin shims over these two functions, and
//!   [`run_dispatched`] composes `run_task` with the unified dispatcher
//!   [`protocol_for`](crate::unified::protocol_for()) (one call from
//!   `(task, start)` to verified statistics — this is what `rr-checker` and
//!   the `exp_*` binaries use).

use rr_corda::{
    Engine, EngineOptions, Monitor, Protocol, RunOutcome, RunReport, Scheduler, SchedulerKind,
    SimError, StepPath,
};
use rr_ring::Configuration;
use rr_search::{GatheringMonitor, SearchMonitors};

use crate::clearing::SearchingRunStats;
use crate::gathering::GatheringRunStats;
use crate::unified::{protocol_for, Task, UnifiedProtocol};

/// The single engine-driving loop shared by every harness in this crate.
///
/// Builds an [`Engine`] for `protocol` (options from the protocol's own
/// declaration), builds the observer from the *constructed* engine via
/// `monitor_from` (so monitors that need the engine's robot-id → node
/// assignment get it from the single source of truth), then runs under
/// `scheduler` for at most `max_scheduler_steps` scheduler steps, stopping
/// early when `stop` holds.  A failed simulation (exclusivity violation,
/// invalid move) is returned as `Err`; budget exhaustion is not an error —
/// inspect the returned [`RunReport`].
pub fn drive_with<P, S, M, G, F>(
    protocol: P,
    initial: &Configuration,
    scheduler: &mut S,
    monitor_from: G,
    max_scheduler_steps: u64,
    stop: F,
) -> Result<(Engine<P>, M, RunReport), SimError>
where
    P: Protocol,
    S: Scheduler + ?Sized,
    M: Monitor,
    G: FnOnce(&Engine<P>) -> M,
    F: FnMut(&Engine<P>, &M) -> bool,
{
    let options = EngineOptions::for_protocol(&protocol);
    let mut engine = Engine::new(protocol, initial.clone(), options)?;
    let mut monitor = monitor_from(&engine);
    let report = engine.run(scheduler, &mut monitor, max_scheduler_steps, stop);
    if let RunOutcome::Failed(e) = report.outcome {
        return Err(e);
    }
    Ok((engine, monitor, report))
}

/// [`drive_with`] for a pre-built monitor (the common case when the observer
/// does not depend on the engine's robot-id assignment).
pub fn drive<P, S, M, F>(
    protocol: P,
    initial: &Configuration,
    scheduler: &mut S,
    monitor: &mut M,
    max_scheduler_steps: u64,
    mut stop: F,
) -> Result<(Engine<P>, RunReport), SimError>
where
    P: Protocol,
    S: Scheduler + ?Sized,
    M: Monitor + ?Sized,
    F: FnMut(&Engine<P>, &M) -> bool,
{
    let (engine, _, report) = drive_with(
        protocol,
        initial,
        scheduler,
        |_| monitor,
        max_scheduler_steps,
        move |engine, m: &&mut M| stop(engine, &**m),
    )?;
    Ok((engine, report))
}

/// Engine options the driver uses for `task`: the protocol's own declaration
/// plus the round-leaping step path where the task admits it.
///
/// Gathering authors leap certificates (its endgame is a single walker
/// approaching a quiescent multiplicity), so its runs take [`StepPath::Leap`].
/// The leap fast path is observably identical to baseline stepping and simply
/// declines on uncertified configurations, so this changes no reported
/// statistic — it only removes redundant Look work (and, under round-uniform
/// schedulers, batches whole certified stretches).
#[must_use]
pub fn task_options<P: Protocol>(task: Task, protocol: &P) -> EngineOptions {
    let options = EngineOptions::for_protocol(protocol);
    match task {
        Task::Gathering => options.with_step_path(StepPath::Leap),
        Task::Exploration | Task::GraphSearching => options,
    }
}

/// Success thresholds for a [`run_task`] call.
///
/// Only meaningful for the searching/exploration tasks: the run stops once it
/// has demonstrated `clearings` full ring clearings **and** `explorations`
/// full sweeps by every robot.  With `clearings == 0` the run never stops
/// early (it spends the whole step budget), which is how open-ended
/// experiment runs are expressed.  Gathering always stops at the gathered
/// configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskTargets {
    /// Required number of full ring clearings.
    pub clearings: u64,
    /// Required number of full exploration sweeps per robot.
    pub explorations: u64,
}

impl TaskTargets {
    /// Targets requiring `clearings` clearings and `explorations` sweeps.
    #[must_use]
    pub fn demonstrate(clearings: u64, explorations: u64) -> Self {
        TaskTargets {
            clearings,
            explorations,
        }
    }

    /// Open-ended run: never stop early, spend the whole step budget.
    #[must_use]
    pub fn open_ended() -> Self {
        TaskTargets::default()
    }
}

/// Per-task statistics produced by [`run_task`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskStats {
    /// Statistics of a searching/exploration run.
    Searching(SearchingRunStats),
    /// Statistics of a gathering run.
    Gathering(GatheringRunStats),
}

/// Outcome of one [`run_task`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskRunReport {
    /// The task that was run.
    pub task: Task,
    /// The engine-level run report (outcome, steps, moves).
    pub report: RunReport,
    /// The task-level statistics.
    pub stats: TaskStats,
}

impl TaskRunReport {
    /// The searching statistics, if this was a searching/exploration run.
    #[must_use]
    pub fn searching(self) -> Option<SearchingRunStats> {
        match self.stats {
            TaskStats::Searching(s) => Some(s),
            TaskStats::Gathering(_) => None,
        }
    }

    /// The gathering statistics, if this was a gathering run.
    #[must_use]
    pub fn gathering(self) -> Option<GatheringRunStats> {
        match self.stats {
            TaskStats::Gathering(s) => Some(s),
            TaskStats::Searching(_) => None,
        }
    }
}

/// Runs `protocol` on `task` from `initial` under `scheduler`: the generic
/// driver behind `run_searching` and `run_gathering`.
///
/// The task decides how the run is observed and when it may stop early:
///
/// | task | monitor | stop condition |
/// |------|---------|----------------|
/// | [`Task::GraphSearching`] / [`Task::Exploration`] | [`SearchMonitors`] | `targets` demonstrated (never, if `targets.clearings == 0`) |
/// | [`Task::Gathering`] | [`GatheringMonitor`] | configuration gathered |
pub fn run_task<P, S>(
    task: Task,
    protocol: P,
    initial: &Configuration,
    scheduler: &mut S,
    targets: TaskTargets,
    max_scheduler_steps: u64,
) -> Result<TaskRunReport, SimError>
where
    P: Protocol,
    S: Scheduler + ?Sized,
{
    let options = task_options(task, &protocol);
    let mut engine = Engine::new(protocol, initial.clone(), options)?;
    run_task_on_engine(task, &mut engine, scheduler, targets, max_scheduler_steps)
}

/// The body of [`run_task`], operating on an already-prepared engine (fresh
/// from [`Engine::new`] or rewound with [`Engine::reset`]).  This is what
/// lets [`BatchRunner`] reuse one engine allocation across a whole batch.
pub fn run_task_on_engine<P, S>(
    task: Task,
    engine: &mut Engine<P>,
    scheduler: &mut S,
    targets: TaskTargets,
    max_scheduler_steps: u64,
) -> Result<TaskRunReport, SimError>
where
    P: Protocol,
    S: Scheduler + ?Sized,
{
    match task {
        Task::Exploration | Task::GraphSearching => {
            let initial = engine.configuration().clone();
            let mut monitors = SearchMonitors::new(&initial, &engine.positions());
            let report = engine.run(
                scheduler,
                &mut monitors,
                max_scheduler_steps,
                |_, m: &SearchMonitors| {
                    targets.clearings > 0 && m.demonstrated(targets.clearings, targets.explorations)
                },
            );
            if let RunOutcome::Failed(e) = report.outcome {
                return Err(e);
            }
            let stats = SearchingRunStats {
                clearings: monitors.clearings(),
                clearing_intervals: monitors.clearing_intervals().to_vec(),
                min_exploration_completions: monitors.min_exploration_completions(),
                moves: monitors.moves_observed(),
                steps: report.steps,
            };
            Ok(TaskRunReport {
                task,
                report,
                stats: TaskStats::Searching(stats),
            })
        }
        Task::Gathering => {
            let mut monitor = GatheringMonitor::new();
            let report = engine.run(
                scheduler,
                &mut monitor,
                max_scheduler_steps,
                |e, _: &GatheringMonitor| e.configuration().is_gathered(),
            );
            if let RunOutcome::Failed(e) = report.outcome {
                return Err(e);
            }
            let stats = GatheringRunStats {
                gathered: engine.configuration().is_gathered(),
                moves: report.moves,
                steps: report.steps,
                broke_gathering: monitor.broke_gathering(),
            };
            Ok(TaskRunReport {
                task,
                report,
                stats: TaskStats::Gathering(stats),
            })
        }
    }
}

/// Why a [`run_dispatched`] call could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The paper claims no algorithm for these parameters (impossible, open,
    /// or out of the model).
    NoProtocol {
        /// The requested task.
        task: Task,
        /// Ring size.
        n: usize,
        /// Number of robots.
        k: usize,
    },
    /// The simulation itself failed.
    Sim(SimError),
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::NoProtocol { task, n, k } => {
                write!(f, "no algorithm claimed for {task} with n={n}, k={k}")
            }
            TaskError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for TaskError {}

impl From<SimError> for TaskError {
    fn from(e: SimError) -> Self {
        TaskError::Sim(e)
    }
}

/// Composes [`run_task`] with the unified dispatcher: picks the protocol the
/// paper prescribes for `(task, n, k)` and runs it.
pub fn run_dispatched<S>(
    task: Task,
    initial: &Configuration,
    scheduler: &mut S,
    targets: TaskTargets,
    max_scheduler_steps: u64,
) -> Result<TaskRunReport, TaskError>
where
    S: Scheduler + ?Sized,
{
    let (n, k) = (initial.n(), initial.num_robots());
    let protocol = protocol_for(task, n, k).ok_or(TaskError::NoProtocol { task, n, k })?;
    Ok(run_task(
        task,
        protocol,
        initial,
        scheduler,
        targets,
        max_scheduler_steps,
    )?)
}

/// One instance of a batch run: everything needed to reproduce a single
/// dispatched task run, as data.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// The task to run.
    pub task: Task,
    /// Starting configuration.
    pub start: Configuration,
    /// Scheduler family.
    pub scheduler: SchedulerKind,
    /// Seed for the scheduler's randomness (ignored by round-robin).
    pub seed: u64,
    /// Early-stop targets.
    pub targets: TaskTargets,
    /// Scheduler-step budget.
    pub max_scheduler_steps: u64,
}

/// Outcome of one [`BatchJob`].
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The task-level report (engine outcome + per-task statistics).
    pub report: TaskRunReport,
    /// Total completed Look–Compute–Move cycles across all robots.
    pub cycles: u64,
}

/// Runs [`BatchJob`]s back to back while reusing **one** engine allocation:
/// the robot vector, configuration storage (including its incremental
/// occupancy index), Look-scratch snapshot and trace buffer are recycled via
/// [`Engine::reset`] between jobs — so across a whole batch the Look phase
/// stays on the zero-allocation O(k) pipeline (engines own their scratch;
/// nothing needs threading through here).  Sweep runners hold one
/// `BatchRunner` per worker.
#[derive(Debug, Default)]
pub struct BatchRunner {
    engine: Option<Engine<UnifiedProtocol>>,
    /// When set, forces this step path for every job regardless of the
    /// per-task default — the knob the lockstep verification harness uses to
    /// run identical sweeps with leaping forced on and off.
    step_path: Option<StepPath>,
}

impl BatchRunner {
    /// Creates an empty runner (the engine is allocated by the first job).
    #[must_use]
    pub fn new() -> Self {
        BatchRunner::default()
    }

    /// A runner that forces `path` for every job, overriding the per-task
    /// default of [`task_options`].
    #[must_use]
    pub fn with_step_path(path: StepPath) -> Self {
        BatchRunner {
            engine: None,
            step_path: Some(path),
        }
    }

    /// Runs one job, reusing the engine left behind by the previous job.
    pub fn run(&mut self, job: &BatchJob) -> Result<BatchOutcome, TaskError> {
        let (n, k) = (job.start.n(), job.start.num_robots());
        let protocol = protocol_for(job.task, n, k).ok_or(TaskError::NoProtocol {
            task: job.task,
            n,
            k,
        })?;
        let mut options = task_options(job.task, &protocol);
        if let Some(path) = self.step_path {
            options = options.with_step_path(path);
        }
        let engine = match &mut self.engine {
            Some(engine) => {
                engine.reset(protocol, &job.start, options)?;
                engine
            }
            slot @ None => slot.insert(Engine::new(protocol, job.start.clone(), options)?),
        };
        let report = job.scheduler.with(job.seed, |scheduler| {
            run_task_on_engine(
                job.task,
                engine,
                scheduler,
                job.targets,
                job.max_scheduler_steps,
            )
        })?;
        let cycles = engine.robots().iter().map(|r| r.cycles).sum();
        Ok(BatchOutcome { report, cycles })
    }
}

/// Runs a whole batch sequentially on one recycled engine, one result per
/// job, in order.  This is the batch entry point sweeps build on: shard the
/// job list, call `run_batch` per shard, concatenate.
pub fn run_batch(jobs: &[BatchJob]) -> Vec<Result<BatchOutcome, TaskError>> {
    let mut runner = BatchRunner::new();
    jobs.iter().map(|job| runner.run(job)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clearing::RingClearingProtocol;
    use crate::gathering::GatheringProtocol;
    use rr_corda::scheduler::RoundRobinScheduler;

    fn cfg(gaps: &[usize]) -> Configuration {
        Configuration::from_gaps_at_origin(gaps)
    }

    #[test]
    fn drive_with_builds_the_monitor_from_the_constructed_engine() {
        use rr_corda::protocol::GreedyGapWalker;
        use rr_search::PositionTracker;
        let c = cfg(&[0, 2, 1, 0, 4]);
        let mut sched = RoundRobinScheduler::new();
        let (engine, tracker, report) = drive_with(
            GreedyGapWalker,
            &c,
            &mut sched,
            |engine| PositionTracker::new(&engine.positions()),
            50,
            |_, _: &PositionTracker| false,
        )
        .unwrap();
        assert_eq!(report.steps, 50);
        // The tracker followed the run from the engine's own initial
        // assignment, so it ends in sync with the engine.
        assert_eq!(tracker.positions(), engine.positions());
    }

    #[test]
    fn run_task_searching_produces_stats() {
        let initial = cfg(&[0, 2, 1, 0, 4]); // rigid, n = 12, k = 5
        let mut sched = RoundRobinScheduler::new();
        let report = run_task(
            Task::GraphSearching,
            RingClearingProtocol::new(),
            &initial,
            &mut sched,
            TaskTargets::demonstrate(2, 0),
            60_000,
        )
        .unwrap();
        assert!(report.report.succeeded());
        let stats = report.searching().expect("searching stats");
        assert!(stats.clearings >= 2);
    }

    #[test]
    fn run_task_gathering_produces_stats() {
        let initial = cfg(&[0, 0, 0, 1, 6]); // C*, n = 12, k = 5
        let mut sched = RoundRobinScheduler::new();
        let report = run_task(
            Task::Gathering,
            GatheringProtocol::new(),
            &initial,
            &mut sched,
            TaskTargets::open_ended(),
            50_000,
        )
        .unwrap();
        let stats = report.gathering().expect("gathering stats");
        assert!(stats.gathered);
        assert!(!stats.broke_gathering);
    }

    #[test]
    fn run_dispatched_rejects_unclaimed_cells() {
        let initial = cfg(&[0, 1, 2, 2]); // n = 9, k = 4: open/impossible band
        let mut sched = RoundRobinScheduler::new();
        let err = run_dispatched(
            Task::GraphSearching,
            &initial,
            &mut sched,
            TaskTargets::demonstrate(1, 0),
            1_000,
        )
        .unwrap_err();
        assert!(
            matches!(err, TaskError::NoProtocol { n: 9, k: 4, .. }),
            "{err}"
        );
    }

    #[test]
    fn batch_runner_matches_individual_runs() {
        // A mixed batch: searching and gathering instances, all three
        // scheduler families.  The recycled-engine batch path must produce
        // exactly the reports of fresh individual runs.
        use rr_corda::SchedulerKind;
        let mut jobs = Vec::new();
        for (task, gaps, targets) in [
            (
                Task::GraphSearching,
                vec![0usize, 2, 1, 0, 4],
                TaskTargets::demonstrate(2, 0),
            ),
            (
                Task::Gathering,
                vec![0, 0, 0, 1, 6],
                TaskTargets::open_ended(),
            ),
            (
                Task::Gathering,
                vec![0, 2, 1, 0, 4],
                TaskTargets::open_ended(),
            ),
        ] {
            for scheduler in SchedulerKind::ALL {
                jobs.push(BatchJob {
                    task,
                    start: cfg(&gaps),
                    scheduler,
                    seed: 11,
                    targets,
                    max_scheduler_steps: 200_000,
                });
            }
        }
        let batched = run_batch(&jobs);
        assert_eq!(batched.len(), jobs.len());
        for (job, result) in jobs.iter().zip(batched) {
            let outcome = result.expect("batch job runs");
            let individual = job
                .scheduler
                .with(job.seed, |s| {
                    run_dispatched(
                        job.task,
                        &job.start,
                        s,
                        job.targets,
                        job.max_scheduler_steps,
                    )
                })
                .expect("individual run");
            assert_eq!(outcome.report.report, individual.report);
            assert_eq!(outcome.report.stats, individual.stats);
            assert!(outcome.cycles > 0);
        }
    }

    #[test]
    fn forced_step_paths_produce_identical_batch_results() {
        // The same mixed batch run three ways: per-task defaults (leap for
        // gathering), leaping forced everywhere, and leaping forced off.
        // Reports and statistics must be identical — leaping is a pure
        // execution strategy, never a semantics change.
        use rr_corda::SchedulerKind;
        let mut jobs = Vec::new();
        for (task, gaps, targets) in [
            (
                Task::GraphSearching,
                vec![0usize, 2, 1, 0, 4],
                TaskTargets::demonstrate(1, 0),
            ),
            (
                Task::Gathering,
                vec![0, 0, 0, 1, 6],
                TaskTargets::open_ended(),
            ),
            (
                Task::Gathering,
                vec![0, 2, 1, 0, 4],
                TaskTargets::open_ended(),
            ),
        ] {
            for scheduler in SchedulerKind::ALL {
                jobs.push(BatchJob {
                    task,
                    start: cfg(&gaps),
                    scheduler,
                    seed: 23,
                    targets,
                    max_scheduler_steps: 200_000,
                });
            }
        }
        let mut default_runner = BatchRunner::new();
        let mut leaping = BatchRunner::with_step_path(StepPath::Leap);
        let mut stepping = BatchRunner::with_step_path(StepPath::StepBaseline);
        for job in &jobs {
            let d = default_runner.run(job).expect("default run");
            let l = leaping.run(job).expect("leap run");
            let s = stepping.run(job).expect("step run");
            assert_eq!(d.report.report, s.report.report, "{job:?}");
            assert_eq!(d.report.stats, s.report.stats, "{job:?}");
            assert_eq!(l.report.report, s.report.report, "{job:?}");
            assert_eq!(l.report.stats, s.report.stats, "{job:?}");
            assert_eq!(d.cycles, s.cycles, "{job:?}");
            assert_eq!(l.cycles, s.cycles, "{job:?}");
        }
    }

    #[test]
    fn batch_runner_reports_unclaimed_cells() {
        let job = BatchJob {
            task: Task::GraphSearching,
            start: cfg(&[0, 1, 2, 2]), // n = 9, k = 4: unclaimed
            scheduler: rr_corda::SchedulerKind::RoundRobin,
            seed: 0,
            targets: TaskTargets::demonstrate(1, 0),
            max_scheduler_steps: 100,
        };
        let mut runner = BatchRunner::new();
        assert!(matches!(
            runner.run(&job),
            Err(TaskError::NoProtocol { n: 9, k: 4, .. })
        ));
        // The runner stays usable after a dispatch failure.
        let ok_job = BatchJob {
            start: cfg(&[0, 2, 1, 0, 4]),
            targets: TaskTargets::demonstrate(1, 0),
            max_scheduler_steps: 60_000,
            ..job
        };
        assert!(runner.run(&ok_job).is_ok());
    }

    #[test]
    fn run_dispatched_solves_claimed_cells() {
        let initial = cfg(&[0, 2, 1, 0, 4]); // n = 12, k = 5
        let mut sched = RoundRobinScheduler::new();
        let report = run_dispatched(
            Task::GraphSearching,
            &initial,
            &mut sched,
            TaskTargets::demonstrate(3, 1),
            200_000,
        )
        .unwrap();
        let stats = report.searching().unwrap();
        assert!(stats.clearings >= 3);
        assert!(stats.min_exploration_completions >= 1);
    }
}
