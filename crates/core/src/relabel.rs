//! Robot relabelings: the automorphism bookkeeping that makes the checker's
//! 2n-fold canonical quotient sound for **liveness**, not just safety.
//!
//! The canonical quotient identifies states up to ring automorphism *and*
//! robot relabeling (`PackedState::canonical_sig`).  For safety that is
//! free: a bad state is bad in every relabeling.  For liveness it is not —
//! fairness is a *per-robot* property, and a cycle in the quotient graph
//! only witnesses an unfair concrete run unless the robot relabeling
//! accumulated along the cycle is tracked and the activation sets are
//! mapped back through it.  [`RobotPerm`] is that bookkeeping: a permutation
//! of robot ids small enough to live in one `u64`, and
//! [`relabel_onto`] computes the *deterministic* alignment between two
//! class-equal states that the checker threads along quotient edges.
//!
//! Determinism matters as much as correctness here: the alignment must be a
//! pure function of the two packed states' bits (never of discovery order or
//! worker count), because the quotient-liveness verdict and any extracted
//! counterexample must be byte-identical across `--workers` values.  The
//! alignment goes through each state's [`rr_corda::CanonicalTransform`]: map every
//! robot to its (canonical node index, canonical phase) cell, sort with
//! robot id as the tie-break, and pair by rank.  Robots in identical cells
//! are interchangeable (any pairing is a valid isomorphism), so the id
//! tie-break is a deterministic choice among correct answers.

use rr_corda::packed::{PHASE_MOVE_CCW, PHASE_MOVE_CW};
use rr_corda::PackedState;

/// Largest robot count a [`RobotPerm`] supports: 4 bits per image in one
/// `u64`.  The exhaustive checker asserts `k ≤ 16` before entering the
/// quotient-liveness pass (its grids stop far below that anyway).
pub const MAX_PERM_ROBOTS: usize = 16;

/// A permutation of robot ids `0..k`, packed 4 bits per image.
///
/// Composition follows function notation: `a.compose(&b)` is `a ∘ b`,
/// the permutation mapping `i ↦ a(b(i))`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct RobotPerm {
    k: u8,
    bits: u64,
}

impl std::fmt::Debug for RobotPerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RobotPerm[")?;
        for i in 0..usize::from(self.k) {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", self.apply(i))?;
        }
        write!(f, "]")
    }
}

impl RobotPerm {
    /// The identity permutation on `k` robots.
    ///
    /// # Panics
    ///
    /// Panics if `k >` [`MAX_PERM_ROBOTS`].
    #[must_use]
    pub fn identity(k: usize) -> Self {
        assert!(k <= MAX_PERM_ROBOTS, "RobotPerm supports k ≤ 16");
        let mut bits = 0u64;
        for i in 0..k {
            bits |= (i as u64) << (4 * i);
        }
        RobotPerm { k: k as u8, bits }
    }

    /// Builds a permutation from its image table: robot `i` maps to
    /// `images[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `images` is longer than [`MAX_PERM_ROBOTS`] or is not a
    /// permutation of `0..images.len()`.
    #[must_use]
    pub fn from_images(images: &[usize]) -> Self {
        let k = images.len();
        let mut perm = RobotPerm::identity(k);
        let mut seen = 0u32;
        let mut bits = 0u64;
        for (i, &image) in images.iter().enumerate() {
            assert!(image < k && seen & (1 << image) == 0, "not a permutation");
            seen |= 1 << image;
            bits |= (image as u64) << (4 * i);
        }
        perm.bits = bits;
        perm
    }

    /// Number of robots the permutation acts on.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.k)
    }

    /// Whether the permutation acts on zero robots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// The image of robot `i`.
    #[must_use]
    pub fn apply(&self, i: usize) -> usize {
        debug_assert!(i < usize::from(self.k));
        ((self.bits >> (4 * i)) & 0xF) as usize
    }

    /// Function composition `self ∘ other`: `i ↦ self(other(i))`.
    #[must_use]
    pub fn compose(&self, other: &RobotPerm) -> RobotPerm {
        debug_assert_eq!(self.k, other.k);
        let mut bits = 0u64;
        for i in 0..usize::from(self.k) {
            bits |= (self.apply(other.apply(i)) as u64) << (4 * i);
        }
        RobotPerm { k: self.k, bits }
    }

    /// The inverse permutation.
    #[must_use]
    pub fn inverse(&self) -> RobotPerm {
        let mut bits = 0u64;
        for i in 0..usize::from(self.k) {
            bits |= (i as u64) << (4 * self.apply(i));
        }
        RobotPerm { k: self.k, bits }
    }

    /// The image of an activation bitmask: bit `i` of `mask` lights bit
    /// `self(i)` of the result.  This is how a stored quotient edge's
    /// activation set is read back as a *concrete* per-robot activation.
    #[must_use]
    pub fn image_mask(&self, mask: u32) -> u32 {
        let mut out = 0u32;
        let mut rest = mask;
        while rest != 0 {
            let i = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            out |= 1 << self.apply(i);
        }
        out
    }

    /// Whether this is the identity permutation.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        *self == RobotPerm::identity(usize::from(self.k))
    }
}

/// The deterministic robot alignment between two class-equal states: a
/// [`RobotPerm`] `π` such that robot `i` of `from` corresponds to robot
/// `π(i)` of `to` under a dihedral isomorphism mapping `from` onto `to`.
/// Returns `None` if the states are not in the same canonical class (or
/// differ in instance).
///
/// Both states are mapped through their own [`CanonicalTransform`]s onto the
/// shared canonical word; robots are sorted by (canonical node index,
/// canonical phase, robot id) and paired by rank.  The result depends only
/// on the two states' bits — the property the quotient-liveness pass relies
/// on for worker-count-independent verdicts.
///
/// [`CanonicalTransform`]: rr_corda::CanonicalTransform
///
/// # Panics
///
/// Panics if `k >` [`MAX_PERM_ROBOTS`].
#[must_use]
pub fn relabel_onto(from: &PackedState, to: &PackedState) -> Option<RobotPerm> {
    let (n, k) = from.instance();
    if to.instance() != (n, k) {
        return None;
    }
    assert!(k <= MAX_PERM_ROBOTS, "relabel_onto supports k ≤ 16");
    let rank = |state: &PackedState| -> Vec<(usize, u64, usize)> {
        let transform = state.canonical_transform();
        let mut cells: Vec<(usize, u64, usize)> = state
            .robot_cells()
            .into_iter()
            .enumerate()
            .map(|(id, (node, phase))| {
                (
                    transform.canonical_index(n, node),
                    transform.canonical_phase(phase),
                    id,
                )
            })
            .collect();
        cells.sort_unstable();
        cells
    };
    let from_ranked = rank(from);
    let to_ranked = rank(to);
    // Class-equal states present identical (index, phase) multisets; any
    // mismatch means the states are not actually in the same class.
    let mut images = vec![0usize; k];
    for (f, t) in from_ranked.iter().zip(&to_ranked) {
        if (f.0, f.1) != (t.0, t.1) {
            return None;
        }
        images[f.2] = t.2;
    }
    Some(RobotPerm::from_images(&images))
}

/// Whether a packed phase code is a pending move (cw or ccw) — a helper for
/// checking that an alignment transported move directions coherently.
#[must_use]
pub fn is_pending_move(phase: u64) -> bool {
    phase == PHASE_MOVE_CW || phase == PHASE_MOVE_CCW
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_corda::packed::{PHASE_IDLE, PHASE_READY};
    use rr_corda::protocol::GreedyGapWalker;
    use rr_corda::{Engine, EngineOptions, SchedulerStep};
    use rr_ring::Configuration;

    #[test]
    fn perm_algebra_holds() {
        let p = RobotPerm::from_images(&[2, 0, 1, 3]);
        let q = RobotPerm::from_images(&[1, 2, 3, 0]);
        assert_eq!(p.apply(0), 2);
        assert_eq!(p.compose(&p.inverse()), RobotPerm::identity(4));
        assert_eq!(p.inverse().compose(&p), RobotPerm::identity(4));
        // (p ∘ q)(i) = p(q(i)).
        let pq = p.compose(&q);
        for i in 0..4 {
            assert_eq!(pq.apply(i), p.apply(q.apply(i)));
        }
        assert!(RobotPerm::identity(4).is_identity());
        assert!(!p.is_identity());
    }

    #[test]
    fn image_mask_tracks_apply() {
        let p = RobotPerm::from_images(&[2, 0, 1]);
        assert_eq!(p.image_mask(0b001), 0b100);
        assert_eq!(p.image_mask(0b011), 0b101);
        assert_eq!(p.image_mask(0b111), 0b111);
        assert_eq!(p.image_mask(0), 0);
    }

    #[test]
    fn self_alignment_is_the_identity() {
        let engine = Engine::new(
            GreedyGapWalker,
            Configuration::from_gaps_at_origin(&[1, 2, 4]),
            EngineOptions::default(),
        )
        .unwrap();
        let packed = engine.pack_behavior();
        let perm = relabel_onto(&packed, &packed).unwrap();
        assert!(perm.is_identity());
    }

    #[test]
    fn rotated_states_align_cell_for_cell() {
        // The same gap word placed at two different ring origins: equal
        // canonical class, and the alignment must map each robot of one
        // state onto a robot of the other sitting in the same canonical
        // cell.
        let a = Engine::new(
            GreedyGapWalker,
            Configuration::from_gaps_at_origin(&[1, 2, 4]),
            EngineOptions::default(),
        )
        .unwrap();
        let mut b = Engine::new(
            GreedyGapWalker,
            Configuration::from_gaps_at_origin(&[1, 2, 4]),
            EngineOptions::default(),
        )
        .unwrap();
        // Advance `b` by a full fair round and back so its robots hold the
        // same configuration but were *relabeled* by the dynamics; fall back
        // to the raw rotation check if the protocol moved them.
        let _ = b.step(&SchedulerStep::SsyncRound(vec![0, 1, 2]), &mut ());
        let pa = a.pack_behavior();
        let pb = b.pack_behavior();
        if pa.canonical_sig() == pb.canonical_sig() {
            let perm = relabel_onto(&pa, &pb).unwrap();
            let (n, _) = pa.instance();
            let ta = pa.canonical_transform();
            let tb = pb.canonical_transform();
            let cells_a = pa.robot_cells();
            let cells_b = pb.robot_cells();
            for (i, &(node, phase)) in cells_a.iter().enumerate() {
                let (bn, bp) = cells_b[perm.apply(i)];
                assert_eq!(
                    ta.canonical_index(n, node),
                    tb.canonical_index(n, bn),
                    "robot {i} landed on a different canonical node"
                );
                assert_eq!(ta.canonical_phase(phase), tb.canonical_phase(bp));
            }
        } else {
            // Different class: alignment must refuse.
            assert!(relabel_onto(&pa, &pb).is_none());
        }
    }

    #[test]
    fn phase_helpers_classify_codes() {
        assert!(!is_pending_move(PHASE_READY));
        assert!(!is_pending_move(PHASE_IDLE));
        assert!(is_pending_move(rr_corda::packed::PHASE_MOVE_CW));
        assert!(is_pending_move(rr_corda::packed::PHASE_MOVE_CCW));
    }
}
