//! Baseline and ablation protocols.
//!
//! These are *not* part of the paper's contribution; they implement the simple
//! strategies the paper discusses when motivating its algorithms
//! (Section 4.1) and the ablations used by experiment E9:
//!
//! * [`SingleWalker`] — one robot walking forever in one direction: it
//!   perpetually explores a ring on its own but never clears it;
//! * [`TwoRobotSlide`] — the textbook two-robot clearing strategy (one robot
//!   anchors, the other sweeps); it is a *centralized* strategy: in the
//!   min-CORDA model the adversary defeats it (Theorem 2), which the checker
//!   crate demonstrates;
//! * [`NaiveAligner`] — Align without the symmetry guards (it always performs
//!   `reduction_1` when the supermin interval is empty): it gets trapped in
//!   the symmetric configurations characterized by Lemmas 3–5.

use rr_corda::{Decision, Protocol, Snapshot, ViewIndex};
use rr_ring::pattern;

use crate::align::reductions::{self, Reduction};

/// A robot that always keeps walking in one direction (relative to its own
/// perception: it moves towards its larger adjacent interval, ties towards the
/// first view), regardless of what the others do.
#[derive(Debug, Default, Clone, Copy)]
pub struct SingleWalker;

impl Protocol for SingleWalker {
    fn name(&self) -> &str {
        "single-walker"
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        let a = snapshot.views[0].gap(0);
        let b = snapshot.views[1].gap(0);
        if a == 0 && b == 0 {
            Decision::Idle
        } else if a >= b {
            Decision::Move(ViewIndex::First)
        } else {
            Decision::Move(ViewIndex::Second)
        }
    }
}

/// The best an oblivious disoriented robot can do towards the classical
/// two-robot sweep: walk away from the other robot (into its larger adjacent
/// interval).  The centralized sweep of Section 4.1 needs the walker to keep
/// its direction *past* the point diametral to the anchor, which an oblivious
/// robot cannot do: from the diametral zone onwards "keep going" and "turn
/// back" are indistinguishable, so the walker stalls exactly where Theorem 2
/// places the obstruction.  The tests below and `rr-checker` demonstrate this.
#[derive(Debug, Default, Clone, Copy)]
pub struct TwoRobotSlide;

impl Protocol for TwoRobotSlide {
    fn name(&self) -> &str {
        "two-robot-slide"
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        if snapshot.views[0].len() != 2 {
            return Decision::Idle;
        }
        let a = snapshot.views[0].gap(0);
        let b = snapshot.views[1].gap(0);
        // Walk away from the closer robot (i.e. into the larger gap); when the
        // two gaps are equal the robot cannot break the tie and idles — the
        // diametral deadlock of Theorem 2.
        match a.cmp(&b) {
            std::cmp::Ordering::Greater => Decision::Move(ViewIndex::First),
            std::cmp::Ordering::Less => Decision::Move(ViewIndex::Second),
            std::cmp::Ordering::Equal => Decision::Idle,
        }
    }
}

/// Align without its symmetry guards: whenever the supermin interval is empty
/// it performs `reduction_1` unconditionally (and `reduction_0` otherwise).
/// Used by the ablation experiment to show why the guarded rule order of
/// Figure 1 is necessary: this protocol walks straight into the symmetric
/// configurations of Lemma 3, where two robots become indistinguishable and
/// the adversary forces a collision or a livelock.
#[derive(Debug, Default, Clone, Copy)]
pub struct NaiveAligner;

impl NaiveAligner {
    /// Whether the word is already the goal configuration `C*`.
    #[must_use]
    fn is_goal(word: &[usize]) -> bool {
        pattern::is_c_star_type(word)
    }
}

impl Protocol for NaiveAligner {
    fn name(&self) -> &str {
        "naive-aligner"
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        let k = snapshot.views[0].len();
        if k < 3 {
            return Decision::Idle;
        }
        let w_min = snapshot.views[0].supermin();
        if Self::is_goal(w_min.gaps()) {
            return Decision::Idle;
        }
        let rule = if w_min.gap(0) > 0 {
            Reduction::Zero
        } else if reductions::ell1(&w_min).is_some_and(|l| l + 1 < k) {
            Reduction::One
        } else {
            return Decision::Idle;
        };
        let mover = reductions::mover_view(&w_min, rule);
        if snapshot.views[0] == mover {
            Decision::Move(ViewIndex::First)
        } else if snapshot.views[1] == mover {
            Decision::Move(ViewIndex::Second)
        } else {
            Decision::Idle
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_corda::scheduler::RoundRobinScheduler;
    use rr_corda::{Engine, MultiplicityCapability, Scheduler, SchedulerStep};
    use rr_ring::{symmetry, Configuration, Direction};
    use rr_search::{Contamination, ExplorationTracker};

    fn cfg(gaps: &[usize]) -> Configuration {
        Configuration::from_gaps_at_origin(gaps)
    }

    #[test]
    fn single_walker_explores_but_never_clears() {
        let ring = rr_ring::Ring::new(9);
        let initial = Configuration::new_exclusive(ring, &[0]).unwrap();
        let mut sim = Engine::with_default_options(SingleWalker, initial.clone()).unwrap();
        let mut sched = RoundRobinScheduler::new();
        let mut contamination = Contamination::initial(&initial);
        let mut exploration = ExplorationTracker::new(9, &sim.positions());
        for _ in 0..100 {
            let step = sched.next(&sim.scheduler_view());
            for rec in sim.step(&step, &mut ()).unwrap().moves {
                contamination.observe_move(rec.from, rec.to, sim.configuration());
                exploration.observe_move(rec.robot, rec.to);
            }
        }
        // One robot explores the whole ring many times over ...
        assert!(exploration.min_completions() >= 5);
        // ... but a single robot can never have more than the edge it just
        // traversed clear (everything behind is recontaminated instantly).
        assert!(contamination.clear_count() <= 1);
    }

    #[test]
    fn two_robot_slide_stalls_at_the_diametral_zone() {
        // Robots adjacent on a 9-ring; even a benevolent scheduler that only
        // ever activates the walking robot cannot make it pass the point
        // diametral to the anchor: the oblivious walker turns back there, so
        // the ring is never fully cleared (the obstruction behind Theorem 2).
        let initial = cfg(&[0, 7]);
        let mut sim = Engine::with_default_options(TwoRobotSlide, initial.clone()).unwrap();
        let mut contamination = Contamination::initial(&initial);
        let mut reached_diametral = false;
        for _ in 0..100 {
            for rec in sim
                .step(&SchedulerStep::SsyncRound(vec![1]), &mut ())
                .unwrap()
                .moves
            {
                contamination.observe_move(rec.from, rec.to, sim.configuration());
            }
            assert!(
                !contamination.all_clear(),
                "two oblivious robots must not clear the ring"
            );
            let pos = sim.positions();
            reached_diametral |= sim.ring().diametral(pos[0], pos[1]);
        }
        assert!(
            reached_diametral,
            "the walker must reach the diametral zone and stall there"
        );
    }

    #[test]
    fn two_robot_slide_deadlocks_on_diametral_configurations() {
        // On an even ring with the robots diametrally opposed neither robot
        // can distinguish its two sides: the protocol idles forever.
        let initial = cfg(&[3, 3]);
        let mut sim = Engine::with_default_options(TwoRobotSlide, initial).unwrap();
        for r in 0..sim.num_robots() {
            assert!(!sim
                .step(&SchedulerStep::SsyncRound(vec![r]), &mut ())
                .unwrap()
                .moved());
        }
        assert_eq!(sim.move_count(), 0);
    }

    #[test]
    fn naive_aligner_reaches_a_symmetric_trap() {
        // Lemma 3 family: from (0,1,2,3) the unguarded reduction_1 creates the
        // symmetric configuration (0,0,3,3), which real Align avoids.
        let initial = cfg(&[0, 1, 2, 3]);
        assert!(symmetry::is_rigid(&initial));
        let mut sim = Engine::with_default_options(NaiveAligner, initial).unwrap();
        let mut sched = RoundRobinScheduler::new();
        let mut reached_symmetric = false;
        for _ in 0..200 {
            let step = sched.next(&sim.scheduler_view());
            if sim.step(&step, &mut ()).is_err() {
                // A collision caused by the broken rule also proves the point.
                reached_symmetric = true;
                break;
            }
            let current = sim.configuration();
            if !symmetry::is_rigid(current)
                && rr_ring::supermin_view(current) != rr_ring::View::new(vec![0, 0, 2, 2])
            {
                reached_symmetric = true;
                break;
            }
        }
        assert!(
            reached_symmetric,
            "the unguarded aligner must hit a symmetric trap"
        );
    }

    #[test]
    fn real_align_avoids_the_trap_where_the_naive_one_fails() {
        use crate::align::run_to_c_star;
        let initial = cfg(&[0, 1, 2, 3]);
        let mut sched = RoundRobinScheduler::new();
        let (final_config, _) = run_to_c_star(&initial, &mut sched, 10_000).unwrap();
        assert_eq!(
            rr_ring::supermin_view(&final_config),
            rr_ring::View::new(vec![0, 0, 1, 5])
        );
    }

    #[test]
    fn walker_decision_is_direction_insensitive() {
        let c = cfg(&[2, 5, 1]);
        for v in c.occupied_nodes() {
            let cw = Snapshot::capture(&c, v, MultiplicityCapability::None, Direction::Cw);
            let ccw = Snapshot::capture(&c, v, MultiplicityCapability::None, Direction::Ccw);
            match (SingleWalker.compute(&cw), SingleWalker.compute(&ccw)) {
                (Decision::Move(a), Decision::Move(b)) => {
                    if cw.views[0].gap(0) != cw.views[1].gap(0) {
                        assert_eq!(a.index(), 1 - b.index());
                    }
                }
                (Decision::Idle, Decision::Idle) => {}
                other => panic!("inconsistent {other:?}"),
            }
        }
    }
}
