//! Shared view-analysis helpers used by the protocol implementations.
//!
//! Everything here is computed from a single local [`View`] (or a pair of
//! views), never from global simulator state: a view determines the
//! configuration up to rotation and reflection, which is all an anonymous
//! disoriented robot may use.

use rr_ring::View;

/// One maximal run of adjacent robots together with the gap that follows it
/// (in the reading direction of the view it was derived from).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGap {
    /// Number of adjacent robots in the run (at least 1).
    pub block: usize,
    /// Number of empty nodes between this run and the next one (at least 1).
    pub gap: usize,
}

/// Decomposes the cyclic gap word of a view into its block/gap structure.
///
/// The first block is the one containing the observing robot; blocks follow in
/// the reading direction of the view.  If no gap is positive (all robots are
/// adjacent, `k = n`), a single block with gap 0 is returned.
#[must_use]
pub fn block_structure(view: &View) -> Vec<BlockGap> {
    let gaps = view.gaps();
    let k = gaps.len();
    if gaps.iter().all(|&g| g == 0) {
        return vec![BlockGap { block: k, gap: 0 }];
    }
    // Rotate so that the first considered robot starts a block, i.e. the gap
    // *preceding* it (the last gap of the view) is positive.  We instead build
    // blocks by scanning and merging the wrap-around at the end.
    let mut blocks: Vec<BlockGap> = Vec::new();
    let mut current_block = 1usize; // the observing robot
    for &g in gaps.iter().take(k - 1) {
        if g == 0 {
            current_block += 1;
        } else {
            blocks.push(BlockGap {
                block: current_block,
                gap: g,
            });
            current_block = 1;
        }
    }
    let last_gap = gaps[k - 1];
    if last_gap == 0 {
        // The wrap-around merges the trailing run with the first block.
        if let Some(first) = blocks.first_mut() {
            // This can only happen if there is at least one positive gap, so
            // `blocks` is non-empty; the trailing robots belong to the block
            // of the observing robot seen "from behind".
            first.block += current_block;
        }
    } else {
        blocks.push(BlockGap {
            block: current_block,
            gap: last_gap,
        });
    }
    blocks
}

/// The sizes of the maximal runs of adjacent robots, in descending order.
#[must_use]
pub fn block_sizes_sorted(view: &View) -> Vec<usize> {
    let mut sizes: Vec<usize> = block_structure(view).iter().map(|b| b.block).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

/// Reconstructs the occupancy of the ring relative to the observing robot:
/// entry `i` of the result tells whether the node at distance `i` in the
/// reading direction of `view` is occupied (entry 0 is the robot itself).
#[must_use]
pub fn relative_occupancy(view: &View) -> Vec<bool> {
    let n = view.len() + view.total_gap();
    let mut occ = vec![false; n];
    let mut pos = 0usize;
    occ[0] = true;
    for &g in view.gaps().iter().take(view.len() - 1) {
        pos += g + 1;
        occ[pos] = true;
    }
    occ
}

/// Whether `view` read from this robot equals the supermin view of the
/// configuration (i.e. the robot can claim the role attached to "the node
/// whose view is the supermin view" for this reading direction).
#[must_use]
pub fn reads_supermin(view: &View) -> bool {
    *view == view.supermin()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(gaps: &[usize]) -> View {
        View::new(gaps.to_vec())
    }

    #[test]
    fn block_structure_simple() {
        // (0,0,1,0,6): block of 3 (me + 2), gap 1, block of 2, gap 6.
        let s = block_structure(&v(&[0, 0, 1, 0, 6]));
        assert_eq!(
            s,
            vec![BlockGap { block: 3, gap: 1 }, BlockGap { block: 2, gap: 6 }]
        );
    }

    #[test]
    fn block_structure_wraps_around() {
        // (1, 0, 6, 0): me, gap 1, block of 2?, ... last gap 0 merges the
        // trailing robot with my block: blocks are {me, last robot} and the
        // middle two.
        let s = block_structure(&v(&[1, 0, 6, 0]));
        assert_eq!(
            s,
            vec![BlockGap { block: 2, gap: 1 }, BlockGap { block: 2, gap: 6 }]
        );
    }

    #[test]
    fn block_structure_all_adjacent() {
        let s = block_structure(&v(&[0, 0, 0, 5]));
        assert_eq!(s, vec![BlockGap { block: 4, gap: 5 }]);
        let s = block_structure(&v(&[0, 0, 0]));
        assert_eq!(s, vec![BlockGap { block: 3, gap: 0 }]);
    }

    #[test]
    fn block_structure_isolated_robots() {
        let s = block_structure(&v(&[2, 3, 4]));
        assert_eq!(
            s,
            vec![
                BlockGap { block: 1, gap: 2 },
                BlockGap { block: 1, gap: 3 },
                BlockGap { block: 1, gap: 4 }
            ]
        );
    }

    #[test]
    fn block_sizes_are_sorted_descending() {
        assert_eq!(block_sizes_sorted(&v(&[0, 0, 1, 0, 6])), vec![3, 2]);
        assert_eq!(block_sizes_sorted(&v(&[1, 0, 6, 0])), vec![2, 2]);
        assert_eq!(block_sizes_sorted(&v(&[2, 3, 4])), vec![1, 1, 1]);
    }

    #[test]
    fn block_totals_equal_robot_count() {
        for gaps in [
            vec![0, 0, 1, 0, 6],
            vec![1, 0, 6, 0],
            vec![2, 3, 4],
            vec![0, 0, 0, 5],
        ] {
            let view = v(&gaps);
            let total: usize = block_structure(&view).iter().map(|b| b.block).sum();
            assert_eq!(total, view.len());
        }
    }

    #[test]
    fn relative_occupancy_matches_view() {
        let view = v(&[0, 2, 1, 4]);
        let occ = relative_occupancy(&view);
        assert_eq!(occ.len(), 4 + 7);
        let occupied: Vec<usize> = (0..occ.len()).filter(|&i| occ[i]).collect();
        assert_eq!(occupied, vec![0, 1, 4, 6]);
    }

    #[test]
    fn reads_supermin_only_at_the_supermin_node() {
        let w = v(&[0, 0, 1, 3]);
        assert!(reads_supermin(&w));
        assert!(!reads_supermin(&w.rotation(1)));
        assert!(!reads_supermin(&w.opposite_direction()));
    }
}
