//! Pluggable correctness invariants for exhaustive model checking.
//!
//! A protocol's correctness claim decomposes into **safety** (nothing bad on
//! any edge of the reachable state graph) and **liveness** (every *fair*
//! infinite schedule makes the required progress).  The paper states one such
//! claim per task; this module turns each into an [`Invariant`] the
//! exhaustive checker (`rr_checker::explore`) can enforce along **all**
//! scheduler interleavings instead of a seed sample:
//!
//! * [`GatheringInvariant`] — a gathered configuration is never abandoned
//!   (safety), and every fair schedule reaches a *durably* gathered state,
//!   i.e. gathered with no pending move left to break it (liveness,
//!   [`LivenessMode::Reach`]);
//! * [`SearchingInvariant`] — the configuration stays exclusive and the
//!   contamination state stays closed under the recontamination rules
//!   (safety), and every fair schedule clears the whole ring again and again
//!   (liveness, [`LivenessMode::ReachRepeatedly`]) — the *perpetual* graph
//!   searching property;
//! * [`AlignmentInvariant`] — exclusivity (safety) plus: every fair schedule
//!   reaches the special configuration `C*` (liveness), the Align phase both
//!   searching algorithms and the gathering algorithm build on.
//!
//! Invariants are deliberately *oblivious to the checker's search order*:
//! path-dependent verdicts (the contamination state) live in an explicit
//! [`AugState`] that the checker stores alongside each engine state, so a
//! state reached along two different paths is checked consistently.

use rr_corda::{RobotState, StepReport};
use rr_ring::Configuration;
use rr_search::Contamination;

use crate::align::AlignProtocol;

/// A read-only view of one model-checker state: the configuration plus the
/// per-robot engine bookkeeping (positions, pending phases) and, under a
/// fault-injecting exploration, the set of crash-stopped robots.
#[derive(Debug, Clone, Copy)]
pub struct StateView<'a> {
    /// The configuration at this state.
    pub config: &'a Configuration,
    /// Per-robot engine state (node + Look–Compute–Move phase).
    pub robots: &'a [RobotState],
    /// Bitmask of crash-stopped robots (bit `r` set ⇔ robot `r` has crashed
    /// and will never be activated again).  Zero in fault-free exploration.
    pub crashed: u32,
}

impl<'a> StateView<'a> {
    /// A fault-free view (no crashed robots).
    #[must_use]
    pub fn new(config: &'a Configuration, robots: &'a [RobotState]) -> Self {
        StateView {
            config,
            robots,
            crashed: 0,
        }
    }

    /// The same view with the given crashed-robot mask.
    #[must_use]
    pub fn with_crashed(mut self, crashed: u32) -> Self {
        self.crashed = crashed;
        self
    }

    /// Whether robot `r` has crash-stopped.
    #[must_use]
    pub fn is_crashed(&self, r: usize) -> bool {
        r < 32 && self.crashed & (1 << r) != 0
    }

    /// Whether any robot holds a pending move (a Look taken but not yet
    /// executed).
    #[must_use]
    pub fn has_pending_move(&self) -> bool {
        self.robots.iter().any(RobotState::has_pending_move)
    }

    /// Whether any **non-crashed** robot holds a pending move.  A crashed
    /// robot's pending move is frozen forever and can never break anything.
    #[must_use]
    pub fn has_live_pending_move(&self) -> bool {
        self.robots
            .iter()
            .enumerate()
            .any(|(r, robot)| !self.is_crashed(r) && robot.has_pending_move())
    }
}

/// How an invariant's liveness obligation quantifies over fair schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivenessMode {
    /// Every fair schedule must eventually reach a target state
    /// ([`Invariant::is_target`]).  Target states are goals for the liveness
    /// analysis (lassos must avoid them), but the checker still expands
    /// them: their outgoing edges carry safety obligations too (e.g. "a
    /// durably gathered configuration is never abandoned").
    Reach,
    /// Every fair schedule must make progress ([`Invariant::observe_step`]
    /// returning `true`) infinitely often — the *perpetual* properties.
    ReachRepeatedly,
}

/// Auxiliary path state carried by the checker next to each engine state.
///
/// Most invariants need none; the searching invariant needs the edge
/// contamination state, which is a function of the path, not of the
/// configuration.  The checker treats the pair (engine state, aug state) as
/// the model-checking state, so two paths meeting in the same pair are safely
/// merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AugState {
    /// No auxiliary state.
    None,
    /// The graph-searching contamination state.
    Contamination(Contamination),
}

impl AugState {
    /// A compact hashable encoding, appended to the engine state key by the
    /// checker's deduplication.  For every variant the encoding is
    /// **lossless** given a template of the same variant and instance:
    /// [`AugState::from_key_bits`] inverts it exactly, which is what lets the
    /// checker store just these 64 bits next to each packed engine state
    /// instead of the full auxiliary state.
    #[must_use]
    pub fn key_bits(&self) -> u64 {
        match self {
            AugState::None => 0,
            AugState::Contamination(c) => c.clear_bits(),
        }
    }

    /// Rebuilds the auxiliary state encoded by `bits`, using `self` as the
    /// template that fixes the variant and the instance (the ring, for a
    /// contamination state).  Exact inverse of [`AugState::key_bits`]:
    /// `template.from_key_bits(aug.key_bits()) == aug` for every `aug` of
    /// the template's variant.
    #[must_use]
    pub fn from_key_bits(&self, bits: u64) -> AugState {
        match self {
            AugState::None => {
                debug_assert_eq!(bits, 0, "AugState::None encodes as 0");
                AugState::None
            }
            AugState::Contamination(c) => {
                AugState::Contamination(Contamination::from_clear_bits(c.ring(), bits))
            }
        }
    }
}

/// A task-level correctness property, checkable along every edge of the
/// reachable state graph.
///
/// `Sync` is a supertrait because the exhaustive checker shares one invariant
/// across its worker threads; invariants are stateless descriptions (all
/// per-path state lives in [`AugState`]), so this costs implementors nothing.
pub trait Invariant: Sync {
    /// Short name used in reports ("gathering", "searching", ...).
    fn name(&self) -> &'static str;

    /// The liveness obligation of this invariant.
    fn liveness_mode(&self) -> LivenessMode;

    /// The auxiliary state at the initial configuration.
    fn initial_aug(&self, _initial: &Configuration) -> AugState {
        AugState::None
    }

    /// Advances the auxiliary state over one engine step and reports whether
    /// the step made liveness progress (only meaningful for
    /// [`LivenessMode::ReachRepeatedly`]).
    fn observe_step(
        &self,
        _aug: &mut AugState,
        _report: &StepReport,
        _after: &Configuration,
    ) -> bool {
        false
    }

    /// Safety check for the edge `before → after`.  `Err` carries a
    /// human-readable description of the violation.
    fn check_edge(
        &self,
        before: &StateView<'_>,
        after: &StateView<'_>,
        aug: &AugState,
    ) -> Result<(), String>;

    /// Whether `state` satisfies the liveness target (only meaningful for
    /// [`LivenessMode::Reach`]).
    fn is_target(&self, _state: &StateView<'_>, _aug: &AugState) -> bool {
        false
    }
}

/// Correctness of the gathering task (Section 5 of the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct GatheringInvariant;

impl GatheringInvariant {
    /// Creates the invariant.
    #[must_use]
    pub fn new() -> Self {
        GatheringInvariant
    }
}

impl Invariant for GatheringInvariant {
    fn name(&self) -> &'static str {
        "gathering"
    }

    fn liveness_mode(&self) -> LivenessMode {
        LivenessMode::Reach
    }

    fn check_edge(
        &self,
        before: &StateView<'_>,
        after: &StateView<'_>,
        _aug: &AugState,
    ) -> Result<(), String> {
        // Once durably gathered (the liveness target), gathering must never
        // be abandoned: from a target state every successor stays a target.
        if self.is_target(before, &AugState::None) && !self.is_target(after, &AugState::None) {
            return Err("a durably gathered configuration was abandoned".to_string());
        }
        Ok(())
    }

    fn is_target(&self, state: &StateView<'_>, _aug: &AugState) -> bool {
        state.config.is_gathered() && !state.has_pending_move()
    }
}

/// Degradation invariant for crash-stop faults: **all non-crashed robots
/// gather** (the crashed robot's final position is wherever it froze, and
/// nothing is required of it).
///
/// This is the strongest gathering property one can still ask for once a
/// robot may crash — the paper's full gathering claim is unattainable (a
/// crashed robot cannot walk to the tower), so the fault sweeps check this
/// instead and report which cells survive.  The crashed set comes from the
/// checker's fault channel ([`StateView::crashed`]); with no crashes the
/// invariant coincides with [`GatheringInvariant`].
///
/// Note the target does **not** require the live robots' node to differ from
/// the crashed robot's: gathering *on* the crashed robot is allowed (and is
/// in fact what multiplicity-seeking protocols do when the crashed robot
/// already sits on the tower).
#[derive(Debug, Clone, Copy, Default)]
pub struct CrashTolerantGatheringInvariant;

impl CrashTolerantGatheringInvariant {
    /// Creates the invariant.
    #[must_use]
    pub fn new() -> Self {
        CrashTolerantGatheringInvariant
    }

    /// Whether every non-crashed robot sits on one common node.
    fn live_gathered(state: &StateView<'_>) -> bool {
        let mut node = None;
        for (r, robot) in state.robots.iter().enumerate() {
            if state.is_crashed(r) {
                continue;
            }
            match node {
                None => node = Some(robot.node),
                Some(v) if v == robot.node => {}
                Some(_) => return false,
            }
        }
        node.is_some()
    }
}

impl Invariant for CrashTolerantGatheringInvariant {
    fn name(&self) -> &'static str {
        "gathering-crash-tolerant"
    }

    fn liveness_mode(&self) -> LivenessMode {
        LivenessMode::Reach
    }

    fn check_edge(
        &self,
        before: &StateView<'_>,
        after: &StateView<'_>,
        _aug: &AugState,
    ) -> Result<(), String> {
        // Same durability clause as the fault-free invariant, over the live
        // robots only.  A crash on the edge itself (before fault-free, after
        // crashed) can only weaken the target's demands, never abandon it.
        if self.is_target(before, &AugState::None) && !self.is_target(after, &AugState::None) {
            return Err("a durably gathered live configuration was abandoned".to_string());
        }
        Ok(())
    }

    fn is_target(&self, state: &StateView<'_>, _aug: &AugState) -> bool {
        Self::live_gathered(state) && !state.has_live_pending_move()
    }
}

/// Degradation invariant for transient sensor corruption: **eventual**
/// gathering only.
///
/// One corrupted Look can make a robot step off an already-gathered tower
/// (a phantom multiplicity elsewhere, a missing one under its feet), so the
/// paper's safety clause "a durably gathered configuration is never
/// abandoned" is forfeit under this adversary.  What survives is the
/// liveness half: every fair schedule still ends durably gathered, because
/// the corruption budget is bounded and the protocol re-converges from
/// whatever configuration the lie produced.  This invariant checks exactly
/// that — same target as [`GatheringInvariant`], no safety obligation.
#[derive(Debug, Clone, Copy, Default)]
pub struct EventualGatheringInvariant;

impl EventualGatheringInvariant {
    /// Creates the invariant.
    #[must_use]
    pub fn new() -> Self {
        EventualGatheringInvariant
    }
}

impl Invariant for EventualGatheringInvariant {
    fn name(&self) -> &'static str {
        "gathering-eventual"
    }

    fn liveness_mode(&self) -> LivenessMode {
        LivenessMode::Reach
    }

    fn check_edge(
        &self,
        _before: &StateView<'_>,
        _after: &StateView<'_>,
        _aug: &AugState,
    ) -> Result<(), String> {
        Ok(())
    }

    fn is_target(&self, state: &StateView<'_>, _aug: &AugState) -> bool {
        state.config.is_gathered() && !state.has_pending_move()
    }
}

/// Correctness of exclusive perpetual graph searching (Sections 4.3–4.4).
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchingInvariant;

impl SearchingInvariant {
    /// Creates the invariant.
    #[must_use]
    pub fn new() -> Self {
        SearchingInvariant
    }
}

impl Invariant for SearchingInvariant {
    fn name(&self) -> &'static str {
        "searching"
    }

    fn liveness_mode(&self) -> LivenessMode {
        LivenessMode::ReachRepeatedly
    }

    fn initial_aug(&self, initial: &Configuration) -> AugState {
        AugState::Contamination(Contamination::initial(initial))
    }

    fn observe_step(&self, aug: &mut AugState, report: &StepReport, after: &Configuration) -> bool {
        let AugState::Contamination(contamination) = aug else {
            unreachable!("searching invariant always carries a contamination state");
        };
        for record in &report.moves {
            contamination.observe_move(record.from, record.to, after);
        }
        if contamination.all_clear() {
            // A full clearing: the perpetual property restarts from scratch,
            // exactly as `SearchMonitors` counts it.
            contamination.reset();
            contamination.observe_configuration(after);
            true
        } else {
            false
        }
    }

    fn check_edge(
        &self,
        _before: &StateView<'_>,
        after: &StateView<'_>,
        aug: &AugState,
    ) -> Result<(), String> {
        // One pass over the occupancy: the exclusivity check and the bitmask
        // the closure check consumes (this runs on every edge the model
        // checker explores).
        let mut occupied = 0u64;
        let mut exclusive = true;
        for v in 0..after.config.n() {
            let c = after.config.count_at(v);
            exclusive &= c <= 1;
            occupied |= u64::from(c > 0) << v;
        }
        // The exclusive tasks never create a multiplicity (the engine raises
        // a SimError first, but a checker running with exclusivity disabled
        // would still be caught here).
        if !exclusive {
            return Err("exclusivity violated: two robots share a node".to_string());
        }
        // Contamination monotonicity: the clear-edge set must be closed under
        // the recontamination rules — every clear arc is guarded at both
        // ends.  A non-fixpoint means contamination was under-propagated.
        let AugState::Contamination(contamination) = aug else {
            unreachable!("searching invariant always carries a contamination state");
        };
        if !contamination.is_recontamination_closed_mask(occupied) {
            return Err("contamination state is not recontamination-closed".to_string());
        }
        Ok(())
    }
}

/// Correctness of the Align phase (Section 3): every fair schedule reaches
/// the special configuration `C*` (or gathers outright, for protocols that
/// continue past `C*`).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlignmentInvariant;

impl AlignmentInvariant {
    /// Creates the invariant.
    #[must_use]
    pub fn new() -> Self {
        AlignmentInvariant
    }
}

impl Invariant for AlignmentInvariant {
    fn name(&self) -> &'static str {
        "alignment"
    }

    fn liveness_mode(&self) -> LivenessMode {
        LivenessMode::Reach
    }

    fn check_edge(
        &self,
        _before: &StateView<'_>,
        after: &StateView<'_>,
        _aug: &AugState,
    ) -> Result<(), String> {
        if !after.config.is_exclusive() {
            return Err("exclusivity violated: two robots share a node".to_string());
        }
        Ok(())
    }

    fn is_target(&self, state: &StateView<'_>, _aug: &AugState) -> bool {
        if state.config.is_gathered() {
            return true;
        }
        let supermin = rr_ring::View::new(state.config.gap_sequence()).supermin();
        AlignProtocol::is_goal(&supermin) && !state.has_pending_move()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_corda::{Engine, EngineOptions, SchedulerStep};
    use rr_ring::Ring;

    fn cfg(gaps: &[usize]) -> Configuration {
        Configuration::from_gaps_at_origin(gaps)
    }

    fn view<'a>(config: &'a Configuration, robots: &'a [RobotState]) -> StateView<'a> {
        StateView::new(config, robots)
    }

    #[test]
    fn gathering_target_requires_durability() {
        let inv = GatheringInvariant::new();
        let ring = Ring::new(6);
        let gathered = Configuration::from_counts(ring, vec![0, 3, 0, 0, 0, 0]).unwrap();
        let ready: Vec<RobotState> = (0..3).map(|_| RobotState::new(1)).collect();
        assert!(inv.is_target(&view(&gathered, &ready), &AugState::None));

        // A pending move makes the gathered state non-durable.
        let mut pending = ready.clone();
        pending[0].phase = rr_corda::robot::Phase::MovePending { target: 2 };
        assert!(!inv.is_target(&view(&gathered, &pending), &AugState::None));

        // Abandoning a durable target is a safety violation.
        let apart = Configuration::from_counts(ring, vec![1, 2, 0, 0, 0, 0]).unwrap();
        let apart_robots = [RobotState::new(0), RobotState::new(1), RobotState::new(1)];
        let err = inv
            .check_edge(
                &view(&gathered, &ready),
                &view(&apart, &apart_robots),
                &AugState::None,
            )
            .unwrap_err();
        assert!(err.contains("abandoned"), "{err}");
    }

    #[test]
    fn searching_observes_clearings_and_checks_closure() {
        let inv = SearchingInvariant::new();
        let ring = Ring::new(6);
        let mut config = Configuration::new_exclusive(ring, &[0, 1]).unwrap();
        let mut aug = inv.initial_aug(&config);
        assert!(matches!(aug, AugState::Contamination(_)));
        let key0 = aug.key_bits();

        // Sweep robot 1 around the ring: the last move clears everything and
        // observe_step reports progress exactly once.
        let mut cleared = 0;
        let mut pos = 1usize;
        for next in [2usize, 3, 4, 5] {
            config.move_robot(pos, next).unwrap();
            let report = StepReport {
                moves: vec![rr_corda::MoveRecord {
                    robot: 1,
                    from: pos,
                    to: next,
                    step: 0,
                }],
                looks: 1,
                idles: 0,
            };
            if inv.observe_step(&mut aug, &report, &config) {
                cleared += 1;
            }
            let robots = [RobotState::new(0), RobotState::new(next)];
            inv.check_edge(&view(&config, &robots), &view(&config, &robots), &aug)
                .unwrap();
            pos = next;
        }
        assert_eq!(cleared, 1, "the sweep clears the ring exactly once");
        assert_ne!(aug.key_bits(), key0);

        // A hand-corrupted aug (clear edge with an unguarded end) fails the
        // closure check.
        // A contamination state closed for robots at {0, 1} (edge 0 guarded
        // and clear) is NOT closed for robots at {0, 3}: node 1 is then empty
        // next to contaminated edge 1, so clear edge 0 must recontaminate.
        let bad = AugState::Contamination(Contamination::initial(
            &Configuration::new_exclusive(ring, &[0, 1]).unwrap(),
        ));
        let two = Configuration::new_exclusive(ring, &[0, 3]).unwrap();
        let robots = [RobotState::new(0), RobotState::new(3)];
        let err = inv
            .check_edge(&view(&two, &robots), &view(&two, &robots), &bad)
            .unwrap_err();
        assert!(err.contains("recontamination"), "{err}");
    }

    #[test]
    fn aug_key_bits_round_trip_through_the_template() {
        // None: trivial.
        assert_eq!(AugState::None.from_key_bits(0), AugState::None);
        // Contamination: every mid-run state survives the 64-bit encoding.
        let inv = SearchingInvariant::new();
        let ring = Ring::new(6);
        let mut config = Configuration::new_exclusive(ring, &[0, 1]).unwrap();
        let template = inv.initial_aug(&config);
        let mut aug = template.clone();
        let mut pos = 1usize;
        for next in [2usize, 3, 4, 5] {
            config.move_robot(pos, next).unwrap();
            let report = StepReport {
                moves: vec![rr_corda::MoveRecord {
                    robot: 1,
                    from: pos,
                    to: next,
                    step: 0,
                }],
                looks: 1,
                idles: 0,
            };
            inv.observe_step(&mut aug, &report, &config);
            assert_eq!(template.from_key_bits(aug.key_bits()), aug);
            pos = next;
        }
    }

    #[test]
    fn searching_rejects_multiplicities() {
        let inv = SearchingInvariant::new();
        let ring = Ring::new(6);
        let tower = Configuration::from_counts(ring, vec![2, 0, 0, 1, 0, 0]).unwrap();
        let robots = [RobotState::new(0), RobotState::new(0), RobotState::new(3)];
        let aug = inv.initial_aug(&tower);
        let err = inv
            .check_edge(&view(&tower, &robots), &view(&tower, &robots), &aug)
            .unwrap_err();
        assert!(err.contains("exclusivity"), "{err}");
    }

    #[test]
    fn alignment_target_is_c_star_or_gathered() {
        let inv = AlignmentInvariant::new();
        // C* for (n, k) = (8, 4) is the gap word (0, 0, 1, 3).
        let c_star = cfg(&[0, 0, 1, 3]);
        let robots: Vec<RobotState> = c_star
            .occupied_nodes()
            .into_iter()
            .map(RobotState::new)
            .collect();
        assert!(inv.is_target(&view(&c_star, &robots), &AugState::None));
        let not_c_star = cfg(&[0, 1, 0, 3]);
        let robots2: Vec<RobotState> = not_c_star
            .occupied_nodes()
            .into_iter()
            .map(RobotState::new)
            .collect();
        assert!(!inv.is_target(&view(&not_c_star, &robots2), &AugState::None));
    }

    #[test]
    fn invariants_read_live_engine_states() {
        // The StateView plumbing matches what the checker hands over: an
        // engine's configuration + robots mid-run.
        let inv = GatheringInvariant::new();
        let c = cfg(&[0, 0, 0, 1, 6]);
        let protocol = crate::gathering::GatheringProtocol::new();
        let options = EngineOptions::for_protocol(&protocol);
        let mut engine = Engine::new(protocol, c, options).unwrap();
        engine.step(&SchedulerStep::Look(0), &mut ()).unwrap();
        let state = engine.save_state();
        let sv = StateView::new(state.configuration(), state.robots());
        assert!(!inv.is_target(&sv, &AugState::None));
    }

    #[test]
    fn crash_tolerant_gathering_ignores_the_crashed_robot() {
        let inv = CrashTolerantGatheringInvariant::new();
        let ring = Ring::new(6);
        // Robots 0, 1 on node 2; robot 2 stranded on node 5.
        let apart = Configuration::from_counts(ring, vec![0, 0, 2, 0, 0, 1]).unwrap();
        let robots = [RobotState::new(2), RobotState::new(2), RobotState::new(5)];
        // Fault-free: not a target (robot 2 is apart) — coincides with the
        // plain gathering invariant.
        assert!(!inv.is_target(&view(&apart, &robots), &AugState::None));
        // Robot 2 crashed: the live robots are gathered.
        let crashed = view(&apart, &robots).with_crashed(1 << 2);
        assert!(inv.is_target(&crashed, &AugState::None));
        // A frozen pending move on the crashed robot does not spoil
        // durability...
        let mut frozen = robots.clone();
        frozen[2].phase = rr_corda::robot::Phase::MovePending { target: 4 };
        assert!(inv.is_target(&view(&apart, &frozen).with_crashed(1 << 2), &AugState::None));
        // ...but a live pending move does.
        let mut live_pending = robots.clone();
        live_pending[0].phase = rr_corda::robot::Phase::MovePending { target: 3 };
        assert!(!inv.is_target(
            &view(&apart, &live_pending).with_crashed(1 << 2),
            &AugState::None
        ));
        // Abandoning the live tower is a safety violation.
        let spread = Configuration::from_counts(ring, vec![0, 1, 1, 0, 0, 1]).unwrap();
        let spread_robots = [RobotState::new(1), RobotState::new(2), RobotState::new(5)];
        let err = inv
            .check_edge(
                &crashed,
                &view(&spread, &spread_robots).with_crashed(1 << 2),
                &AugState::None,
            )
            .unwrap_err();
        assert!(err.contains("abandoned"), "{err}");
    }

    #[test]
    fn eventual_gathering_waives_the_safety_clause() {
        let inv = EventualGatheringInvariant::new();
        let ring = Ring::new(6);
        let gathered = Configuration::from_counts(ring, vec![0, 3, 0, 0, 0, 0]).unwrap();
        let ready: Vec<RobotState> = (0..3).map(|_| RobotState::new(1)).collect();
        assert!(inv.is_target(&view(&gathered, &ready), &AugState::None));
        // The strict invariant flags this edge; the eventual one does not —
        // a corrupted Look may transiently break the tower.
        let apart = Configuration::from_counts(ring, vec![1, 2, 0, 0, 0, 0]).unwrap();
        let apart_robots = [RobotState::new(0), RobotState::new(1), RobotState::new(1)];
        assert!(GatheringInvariant::new()
            .check_edge(
                &view(&gathered, &ready),
                &view(&apart, &apart_robots),
                &AugState::None,
            )
            .is_err());
        inv.check_edge(
            &view(&gathered, &ready),
            &view(&apart, &apart_robots),
            &AugState::None,
        )
        .unwrap();
        assert!(!inv.is_target(&view(&apart, &apart_robots), &AugState::None));
    }
}
