//! The unified dispatcher: one entry point mapping a task and the ring
//! parameters to the protocol that solves it — the "unified approach" of the
//! paper's title.

use rr_corda::{Decision, LeapPlan, MultiplicityCapability, Protocol, Snapshot};
use rr_ring::{Configuration, Direction};
use serde::{Deserialize, Serialize};

use crate::clearing::RingClearingProtocol;
use crate::feasibility::{
    exploration_feasibility, gathering_feasibility, searching_feasibility, Algorithm, Feasibility,
};
use crate::gathering::GatheringProtocol;
use crate::nminus_three::NminusThreeProtocol;

/// The three tasks unified by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// Exclusive perpetual exploration: every robot visits every node
    /// infinitely often, never two robots on one node.
    Exploration,
    /// Exclusive perpetual graph searching: all edges are cleared infinitely
    /// often, never two robots on one node.
    GraphSearching,
    /// Gathering with local multiplicity detection: all robots end on one node.
    Gathering,
}

impl Task {
    /// All tasks.
    pub const ALL: [Task; 3] = [Task::Exploration, Task::GraphSearching, Task::Gathering];

    /// Feasibility of this task for `k` robots on an `n`-node ring, starting
    /// from a rigid exclusive configuration.
    #[must_use]
    pub fn feasibility(self, n: usize, k: usize) -> Feasibility {
        match self {
            Task::Exploration => exploration_feasibility(n, k),
            Task::GraphSearching => searching_feasibility(n, k),
            Task::Gathering => gathering_feasibility(n, k),
        }
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Task::Exploration => "exclusive perpetual exploration",
            Task::GraphSearching => "exclusive perpetual graph searching",
            Task::Gathering => "gathering",
        };
        write!(f, "{s}")
    }
}

/// A protocol chosen by the dispatcher; delegates to one of the three concrete
/// algorithms.
#[derive(Debug, Clone, Copy)]
pub enum UnifiedProtocol {
    /// Ring Clearing (searching / exploration, `5 ≤ k < n-3`).
    RingClearing(RingClearingProtocol),
    /// NminusThree (searching / exploration, `k = n-3`).
    NminusThree(NminusThreeProtocol),
    /// Gathering (`2 < k < n-2`).
    Gathering(GatheringProtocol),
}

impl Protocol for UnifiedProtocol {
    fn name(&self) -> &str {
        match self {
            UnifiedProtocol::RingClearing(p) => p.name(),
            UnifiedProtocol::NminusThree(p) => p.name(),
            UnifiedProtocol::Gathering(p) => p.name(),
        }
    }

    fn capability(&self) -> MultiplicityCapability {
        match self {
            UnifiedProtocol::RingClearing(p) => p.capability(),
            UnifiedProtocol::NminusThree(p) => p.capability(),
            UnifiedProtocol::Gathering(p) => p.capability(),
        }
    }

    fn requires_exclusivity(&self) -> bool {
        match self {
            UnifiedProtocol::RingClearing(p) => p.requires_exclusivity(),
            UnifiedProtocol::NminusThree(p) => p.requires_exclusivity(),
            UnifiedProtocol::Gathering(p) => p.requires_exclusivity(),
        }
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        match self {
            UnifiedProtocol::RingClearing(p) => p.compute(snapshot),
            UnifiedProtocol::NminusThree(p) => p.compute(snapshot),
            UnifiedProtocol::Gathering(p) => p.compute(snapshot),
        }
    }

    fn leap_plan(
        &self,
        config: &Configuration,
        first_dir: Direction,
        capability: MultiplicityCapability,
        plan: &mut LeapPlan,
    ) -> bool {
        match self {
            UnifiedProtocol::RingClearing(p) => p.leap_plan(config, first_dir, capability, plan),
            UnifiedProtocol::NminusThree(p) => p.leap_plan(config, first_dir, capability, plan),
            UnifiedProtocol::Gathering(p) => p.leap_plan(config, first_dir, capability, plan),
        }
    }
}

/// Returns the protocol that solves `task` for `k` robots on an `n`-node ring
/// (starting from a rigid exclusive configuration), or `None` if the paper
/// proves the instance impossible, leaves it open, or the parameters are out
/// of the model.
#[must_use]
pub fn protocol_for(task: Task, n: usize, k: usize) -> Option<UnifiedProtocol> {
    match task.feasibility(n, k) {
        Feasibility::Solvable(Algorithm::RingClearing) => {
            Some(UnifiedProtocol::RingClearing(RingClearingProtocol::new()))
        }
        Feasibility::Solvable(Algorithm::NminusThree) => {
            Some(UnifiedProtocol::NminusThree(NminusThreeProtocol::new()))
        }
        Feasibility::Solvable(Algorithm::Gathering) => {
            Some(UnifiedProtocol::Gathering(GatheringProtocol::new()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clearing::run_searching;
    use crate::gathering::run_gathering;
    use rr_corda::scheduler::RoundRobinScheduler;
    use rr_ring::enumerate::enumerate_rigid_configurations;

    #[test]
    fn dispatcher_matches_feasibility() {
        assert!(matches!(
            protocol_for(Task::GraphSearching, 12, 5),
            Some(UnifiedProtocol::RingClearing(_))
        ));
        assert!(matches!(
            protocol_for(Task::GraphSearching, 12, 9),
            Some(UnifiedProtocol::NminusThree(_))
        ));
        assert!(matches!(
            protocol_for(Task::Gathering, 12, 5),
            Some(UnifiedProtocol::Gathering(_))
        ));
        assert!(protocol_for(Task::GraphSearching, 9, 5).is_none());
        assert!(protocol_for(Task::GraphSearching, 10, 5).is_none());
        assert!(protocol_for(Task::GraphSearching, 12, 4).is_none());
        assert!(protocol_for(Task::Gathering, 12, 11).is_none());
        assert!(matches!(
            protocol_for(Task::Exploration, 14, 6),
            Some(UnifiedProtocol::RingClearing(_))
        ));
    }

    #[test]
    fn unified_protocol_delegates_metadata() {
        let p = protocol_for(Task::Gathering, 12, 5).unwrap();
        assert_eq!(p.name(), "gathering");
        assert_eq!(p.capability(), MultiplicityCapability::Local);
        assert!(!p.requires_exclusivity());
        let p = protocol_for(Task::GraphSearching, 12, 5).unwrap();
        assert_eq!(p.name(), "ring-clearing");
        assert!(p.requires_exclusivity());
    }

    #[test]
    fn dispatched_protocols_actually_solve_their_task() {
        // Graph searching via the dispatcher on (n, k) = (12, 5) and (12, 9).
        for (n, k) in [(12usize, 5usize), (12, 9)] {
            let protocol = protocol_for(Task::GraphSearching, n, k).unwrap();
            let config = enumerate_rigid_configurations(n, k)
                .into_iter()
                .next()
                .unwrap();
            let mut sched = RoundRobinScheduler::new();
            let stats = run_searching(protocol, &config, &mut sched, 3, 0, 60_000).unwrap();
            assert!(stats.clearings >= 3, "n={n} k={k}");
        }
        // Gathering via the dispatcher.
        let config = enumerate_rigid_configurations(11, 4)
            .into_iter()
            .next()
            .unwrap();
        let mut sched = RoundRobinScheduler::new();
        let stats = run_gathering(&config, &mut sched, 100_000).unwrap();
        assert!(stats.gathered);
    }

    #[test]
    fn task_display_and_all() {
        assert_eq!(Task::ALL.len(), 3);
        for t in Task::ALL {
            assert!(!t.to_string().is_empty());
        }
    }
}
