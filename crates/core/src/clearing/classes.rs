//! The configuration classes A-a … A-f of Algorithm Ring Clearing
//! (Section 4.3 of the paper).
//!
//! The second phase of Ring Clearing only ever visits configurations in the
//! set `A`; robots decide which phase they are in by testing membership in
//! `A`, which this module implements from the block/gap structure of a view.

use rr_ring::View;
use serde::{Deserialize, Serialize};

use crate::analysis::{block_structure, BlockGap};

/// The configuration classes of the set `A` (Figure 12 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AClass {
    /// A-a: a block of `k-2` adjacent robots and an adjacent pair at distance
    /// 1 from the block.
    Aa,
    /// A-b: a block of `k-2` adjacent robots, one robot at distance 1 from the
    /// block, and one isolated robot at distance at least 3 from the block on
    /// the other side.
    Ab,
    /// A-c: as A-b but the isolated robot is at distance exactly 2 from the
    /// block on the other side.
    Ac,
    /// A-d: a block of `k-3` adjacent robots, an adjacent pair at distance 1,
    /// and a single robot at distance 2 from the block on the other side.
    Ad,
    /// A-e: as A-d but the single robot is at distance 1 from the block.
    Ae,
    /// A-f: an asymmetric configuration made of a block of `k-1` adjacent
    /// robots and one single robot (this class contains `C*`).
    Af,
}

impl AClass {
    /// All classes, in cycle order (A-a → A-b → A-c → A-d → A-e) followed by
    /// the entry class A-f.
    pub const ALL: [AClass; 6] = [
        AClass::Aa,
        AClass::Ab,
        AClass::Ac,
        AClass::Ad,
        AClass::Ae,
        AClass::Af,
    ];
}

impl std::fmt::Display for AClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AClass::Aa => "A-a",
            AClass::Ab => "A-b",
            AClass::Ac => "A-c",
            AClass::Ad => "A-d",
            AClass::Ae => "A-e",
            AClass::Af => "A-f",
        };
        write!(f, "{s}")
    }
}

/// Classifies the configuration seen by `view` (any view of it) into one of
/// the classes of `A`, or `None` if the configuration is not in `A`.
#[must_use]
pub fn classify(view: &View) -> Option<AClass> {
    let k = view.len();
    if k < 5 {
        return None;
    }
    let blocks = block_structure(view);
    match blocks.len() {
        2 => classify_two_blocks(&blocks, k),
        3 => classify_three_blocks(&blocks, k),
        _ => None,
    }
}

fn classify_two_blocks(blocks: &[BlockGap], k: usize) -> Option<AClass> {
    let (b0, b1) = (blocks[0], blocks[1]);
    let sizes = (b0.block.max(b1.block), b0.block.min(b1.block));
    if sizes == (k - 1, 1) {
        // A-f requires asymmetry: the two gaps must differ.
        if b0.gap != b1.gap && b0.gap >= 1 && b1.gap >= 1 {
            return Some(AClass::Af);
        }
        return None;
    }
    if sizes == (k - 2, 2) && k >= 5 {
        let (g_small, g_big) = (b0.gap.min(b1.gap), b0.gap.max(b1.gap));
        if g_small == 1 && g_big >= 2 {
            return Some(AClass::Aa);
        }
    }
    None
}

fn classify_three_blocks(blocks: &[BlockGap], k: usize) -> Option<AClass> {
    let sizes: Vec<usize> = blocks.iter().map(|b| b.block).collect();
    let mut sorted = sizes.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    if sorted == vec![k - 2, 1, 1] && k >= 5 {
        // Block, gap a, single, gap b, single, gap c, back to block.
        let big = sizes.iter().position(|&s| s == k - 2)?;
        let a = blocks[big].gap;
        let b = blocks[(big + 1) % 3].gap;
        let c = blocks[(big + 2) % 3].gap;
        // One of the two singles must be at distance exactly 1 from the block;
        // the other single's distance from the block (on the far side)
        // distinguishes A-b (>= 3) from A-c (= 2).
        if a == 1 && b >= 1 {
            return match c {
                2 => Some(AClass::Ac),
                c if c >= 3 => Some(AClass::Ab),
                _ => None,
            };
        }
        if c == 1 && b >= 1 {
            return match a {
                2 => Some(AClass::Ac),
                a if a >= 3 => Some(AClass::Ab),
                _ => None,
            };
        }
        return None;
    }
    if sorted == vec![k - 3, 2, 1] && k >= 5 {
        // Candidate assignments of the role "K" (the k-3 block); when k = 5
        // both 2-blocks are candidates.
        for (i, bg) in blocks.iter().enumerate() {
            if bg.block != k - 3 {
                continue;
            }
            let next = blocks[(i + 1) % 3];
            let prev = blocks[(i + 2) % 3];
            // Reading forward from K: K, gap, X, gap, Y, gap, K.
            // The pair must be at distance 1 from K and the single at
            // distance 1 or 2 from K (on its other side).
            let (pair, single, pair_first) = if next.block == 2 && prev.block == 1 {
                (next, prev, true)
            } else if next.block == 1 && prev.block == 2 {
                (prev, next, false)
            } else {
                continue;
            };
            // Gap between K and the pair (on the side where they are adjacent
            // blocks) and gap between the single and K.
            let (k_pair_gap, single_k_gap) = if pair_first {
                (bg.gap, single.gap)
            } else {
                (pair.gap, bg.gap)
            };
            let pair_single_gap = if pair_first { pair.gap } else { single.gap };
            if k_pair_gap == 1 && pair_single_gap >= 1 {
                match single_k_gap {
                    2 => return Some(AClass::Ad),
                    1 => return Some(AClass::Ae),
                    _ => {}
                }
            }
        }
        return None;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(gaps: &[usize]) -> View {
        View::new(gaps.to_vec())
    }

    #[test]
    fn classify_c_star_as_af() {
        assert_eq!(classify(&v(&[0, 0, 0, 1, 6])), Some(AClass::Af));
        assert_eq!(classify(&v(&[0, 0, 0, 0, 1, 7])), Some(AClass::Af));
        // A symmetric two-block configuration is not in A.
        assert_eq!(classify(&v(&[0, 0, 0, 3, 3])), None);
    }

    #[test]
    fn classify_af_general() {
        // Block of k-1 and a single robot with gaps 2 and 5.
        assert_eq!(classify(&v(&[0, 0, 0, 2, 5])), Some(AClass::Af));
    }

    #[test]
    fn classify_aa() {
        // k = 5, n = 12: block of 3, gap 1, pair, gap 6.
        assert_eq!(classify(&v(&[0, 0, 1, 0, 6])), Some(AClass::Aa));
        // Same but the big gap is only 1: symmetric-ish, not A-a.
        assert_eq!(classify(&v(&[0, 0, 1, 0, 1])), None);
    }

    #[test]
    fn classify_ab_and_ac() {
        // Block of 3, gap 1, single, gap 1, single, gap 5  (k=5, n=12): A-b.
        assert_eq!(classify(&v(&[0, 0, 1, 1, 5])), Some(AClass::Ab));
        // Walking robot now at distance 2 from the block on the far side: A-c.
        assert_eq!(classify(&v(&[0, 0, 1, 4, 2])), Some(AClass::Ac));
        // Distance 3: still A-b.
        assert_eq!(classify(&v(&[0, 0, 1, 3, 3])), Some(AClass::Ab));
        // r' not at distance 1 from the block: not in A.
        assert_eq!(classify(&v(&[0, 0, 2, 2, 3])), None);
    }

    #[test]
    fn classify_ad_and_ae() {
        // k = 5, n = 12: block of 2, gap 1, pair, gap 4, single, gap 2.
        assert_eq!(classify(&v(&[0, 1, 0, 4, 2])), Some(AClass::Ad));
        // Single robot now at distance 1 from the block: A-e.
        assert_eq!(classify(&v(&[0, 1, 0, 5, 1])), Some(AClass::Ae));
        // Pair not at distance 1: not in A.
        assert_eq!(classify(&v(&[0, 2, 0, 3, 2])), None);
    }

    #[test]
    fn classify_is_view_independent() {
        // Classification must not depend on which robot's view we use.
        let words: &[(&[usize], Option<AClass>)] = &[
            (&[0, 0, 1, 0, 6], Some(AClass::Aa)),
            (&[0, 0, 1, 1, 5], Some(AClass::Ab)),
            (&[0, 0, 1, 4, 2], Some(AClass::Ac)),
            (&[0, 1, 0, 4, 2], Some(AClass::Ad)),
            (&[0, 1, 0, 5, 1], Some(AClass::Ae)),
            (&[0, 0, 0, 1, 6], Some(AClass::Af)),
            (&[0, 0, 2, 1, 4], None),
        ];
        for (gaps, expected) in words {
            let base = v(gaps);
            for i in 0..base.len() {
                assert_eq!(
                    classify(&base.rotation(i)),
                    *expected,
                    "rotation {i} of {base}"
                );
                assert_eq!(
                    classify(&base.rotation(i).opposite_direction()),
                    *expected,
                    "reverse rotation {i} of {base}"
                );
            }
        }
    }

    #[test]
    fn classify_rejects_small_teams() {
        assert_eq!(classify(&v(&[0, 0, 1, 3])), None);
        assert_eq!(classify(&v(&[0, 1, 5])), None);
    }

    #[test]
    fn classify_larger_k() {
        // k = 7, n = 16: A-d with block of 4, pair, single.
        assert_eq!(classify(&v(&[0, 0, 0, 1, 0, 6, 2])), Some(AClass::Ad));
        // k = 7, n = 16: A-c.
        assert_eq!(classify(&v(&[0, 0, 0, 0, 1, 6, 2])), Some(AClass::Ac));
        // k = 6, n = 14: A-e.
        assert_eq!(classify(&v(&[0, 0, 1, 0, 6, 1])), Some(AClass::Ae));
    }

    #[test]
    fn display_names() {
        assert_eq!(AClass::Aa.to_string(), "A-a");
        assert_eq!(AClass::Af.to_string(), "A-f");
        assert_eq!(AClass::ALL.len(), 6);
    }
}
