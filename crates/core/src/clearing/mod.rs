//! Algorithm **Ring Clearing** (Section 4.3 of the paper): exclusive perpetual
//! graph searching *and* exclusive perpetual exploration of an `n`-node ring
//! by `5 ≤ k < n-3` robots (`n ≥ 10`, except `k = 5, n = 10`), starting from
//! any rigid exclusive configuration.
//!
//! The algorithm works in two phases:
//!
//! 1. while the configuration is not in the set `A` (classes A-a … A-f,
//!    see [`classes`]), run Algorithm [`Align`](crate::align);
//! 2. once in `A`, perpetually cycle through the classes
//!    A-a → A-b → … → A-b → A-c → A-d → A-e → A-a (Figure 12), which clears
//!    every edge of the ring in every cycle and makes every robot visit every
//!    node over time.
//!
//! ### Faithfulness note (documented deviation)
//!
//! The guard of Figure 11 line 7 (class A-d read "through the large gap") is
//! printed as `q_{k-1} > 2` in the paper, which contradicts the proof of
//! Theorem 6 (it would move the single robot *away* from the block).  We
//! implement it as `q_{k-1} = 2`, making lines 7 and 12 the two directional
//! readings of the same robot with the same physical move — exactly like the
//! A-b pair of lines 5 and 11.  See DESIGN.md §2.

pub mod classes;

use rr_corda::{
    Decision, MultiplicityCapability, Protocol, Scheduler, SimError, Snapshot, ViewIndex,
};
use rr_ring::{Configuration, View};
use serde::{Deserialize, Serialize};

use crate::align::AlignProtocol;
use crate::driver::{run_task, TaskTargets};
use crate::unified::Task;
pub use classes::{classify, AClass};

/// The Ring Clearing protocol.
#[derive(Debug, Default, Clone, Copy)]
pub struct RingClearingProtocol;

impl RingClearingProtocol {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        RingClearingProtocol
    }

    /// Whether the parameters are in the range covered by Theorem 6.
    #[must_use]
    pub fn supports(n: usize, k: usize) -> bool {
        n >= 10 && k >= 5 && k + 3 < n && !(k == 5 && n == 10)
    }

    /// The phase-2 decision for a robot whose two directional views are
    /// `views`, assuming the configuration is in `A`; `Decision::Idle` if this
    /// robot is not the designated mover.
    #[must_use]
    pub fn phase2_decide(views: &[View; 2]) -> Decision {
        for (w, idx) in [
            (&views[0], ViewIndex::First),
            (&views[1], ViewIndex::Second),
        ] {
            if moves_towards_last_interval(w) {
                // "move towards q_{k-1}": into the interval behind this view's
                // reading direction, i.e. in the direction of the other view.
                return Decision::Move(idx.other());
            }
            if moves_towards_first_interval(w) {
                return Decision::Move(idx);
            }
        }
        Decision::Idle
    }

    /// The complete decision (phase test + phase 1 or 2) from the two views.
    #[must_use]
    pub fn decide(views: &[View; 2]) -> Decision {
        let k = views[0].len();
        let n = views[0].len() + views[0].total_gap();
        if k < 5 || k + 3 >= n {
            return Decision::Idle;
        }
        if classes::classify(&views[0]).is_some() {
            RingClearingProtocol::phase2_decide(views)
        } else {
            AlignProtocol::decide(views)
        }
    }
}

impl Protocol for RingClearingProtocol {
    fn name(&self) -> &str {
        "ring-clearing"
    }

    fn capability(&self) -> MultiplicityCapability {
        MultiplicityCapability::None
    }

    fn requires_exclusivity(&self) -> bool {
        true
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        RingClearingProtocol::decide(&snapshot.views)
    }
}

fn all_zero(gaps: &[usize], lo: usize, hi_inclusive: usize) -> bool {
    if lo > hi_inclusive {
        return true;
    }
    gaps[lo..=hi_inclusive].iter().all(|&g| g == 0)
}

/// The guards of Figure 11 lines 4–8: the robot reading this view moves
/// towards its last interval `q_{k-1}`.
#[must_use]
pub fn moves_towards_last_interval(w: &View) -> bool {
    let g = w.gaps();
    let k = g.len();
    if k < 5 {
        return false;
    }
    // Line 4, class A-a: (0, 1, 0^{k-3}, q_{k-1} > 2).
    let a_a = g[0] == 0 && g[1] == 1 && all_zero(g, 2, k - 2) && g[k - 1] > 2;
    // Line 5, class A-b: (q_0 > 0, 1, 0^{k-3}, q_{k-1} > 2).
    let a_b = g[0] > 0 && g[1] == 1 && all_zero(g, 2, k - 2) && g[k - 1] > 2;
    // Line 6, class A-c: (0^{k-3}, 2, q_{k-2} > 0, 1).
    let a_c = all_zero(g, 0, k - 4) && g[k - 3] == 2 && g[k - 2] > 0 && g[k - 1] == 1;
    // Line 7, class A-d (with the documented fix q_{k-1} = 2):
    // (q_0 > 0, 0, 1, 0^{k-4}, 2).
    let a_d = g[0] > 0 && g[1] == 0 && g[2] == 1 && all_zero(g, 3, k - 2) && g[k - 1] == 2;
    // Line 8, class A-f: (0^{k-2}, q_{k-2} > q_{k-1} > 0) with q_{k-2}+q_{k-1} > 3.
    let a_f =
        all_zero(g, 0, k - 3) && g[k - 2] > g[k - 1] && g[k - 1] > 0 && g[k - 2] + g[k - 1] > 3;
    a_a || a_b || a_c || a_d || a_f
}

/// The guards of Figure 11 lines 11–13: the robot reading this view moves
/// towards its first interval `q_0`.
#[must_use]
pub fn moves_towards_first_interval(w: &View) -> bool {
    let g = w.gaps();
    let k = g.len();
    if k < 5 {
        return false;
    }
    // Line 11, class A-b: (q_0 > 2, 0^{k-3}, 1, q_{k-1} > 0).
    let a_b = g[0] > 2 && all_zero(g, 1, k - 3) && g[k - 2] == 1 && g[k - 1] > 0;
    // Line 12, class A-d: (2, 0^{k-4}, 1, 0, q_{k-1} > 0).
    let a_d = g[0] == 2 && all_zero(g, 1, k - 4) && g[k - 3] == 1 && g[k - 2] == 0 && g[k - 1] > 0;
    // Line 13, class A-e: (1, 0^{k-4}, 1, 0, q_{k-1} > 1).
    let a_e = g[0] == 1 && all_zero(g, 1, k - 4) && g[k - 3] == 1 && g[k - 2] == 0 && g[k - 1] > 1;
    a_b || a_d || a_e
}

/// Statistics gathered by [`run_searching`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchingRunStats {
    /// Number of times the whole ring was cleared (each clearing restarts from
    /// a fully contaminated ring).
    pub clearings: u64,
    /// Moves between consecutive clearings.
    pub clearing_intervals: Vec<u64>,
    /// Minimum number of full exploration sweeps completed by any robot.
    pub min_exploration_completions: u64,
    /// Total number of moves executed.
    pub moves: u64,
    /// Number of scheduler steps applied.
    pub steps: u64,
}

/// Runs a searching/exploration protocol from `initial` under `scheduler`,
/// stopping once the run has demonstrated `target_clearings` full clearings
/// and `target_explorations` full exploration sweeps by every robot, or when
/// the step budget is exhausted.
///
/// Thin wrapper over the generic task driver
/// [`run_task`](crate::driver::run_task()).
pub fn run_searching<P, S>(
    protocol: P,
    initial: &Configuration,
    scheduler: &mut S,
    target_clearings: u64,
    target_explorations: u64,
    max_scheduler_steps: u64,
) -> Result<SearchingRunStats, SimError>
where
    P: Protocol,
    S: Scheduler + ?Sized,
{
    let targets = TaskTargets::demonstrate(target_clearings, target_explorations);
    let report = run_task(
        Task::GraphSearching,
        protocol,
        initial,
        scheduler,
        targets,
        max_scheduler_steps,
    )?;
    Ok(report
        .searching()
        .expect("searching task yields searching stats"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_corda::scheduler::{
        AsynchronousScheduler, RoundRobinScheduler, SemiSynchronousScheduler,
    };
    use rr_ring::enumerate::enumerate_rigid_configurations;
    use rr_ring::{symmetry, Direction};

    fn cfg(gaps: &[usize]) -> Configuration {
        Configuration::from_gaps_at_origin(gaps)
    }

    fn enabled_movers(config: &Configuration) -> Vec<(usize, Decision)> {
        config
            .occupied_nodes()
            .into_iter()
            .filter_map(|v| {
                let s = Snapshot::capture(config, v, MultiplicityCapability::None, Direction::Cw);
                let d = RingClearingProtocol.compute(&s);
                d.is_move().then_some((v, d))
            })
            .collect()
    }

    #[test]
    fn supports_matches_theorem_6() {
        assert!(RingClearingProtocol::supports(12, 5));
        assert!(RingClearingProtocol::supports(11, 6));
        assert!(RingClearingProtocol::supports(40, 20));
        assert!(!RingClearingProtocol::supports(10, 5)); // excluded case
        assert!(RingClearingProtocol::supports(11, 5));
        assert!(!RingClearingProtocol::supports(12, 4)); // k < 5
        assert!(!RingClearingProtocol::supports(12, 9)); // k >= n-3
        assert!(!RingClearingProtocol::supports(9, 5)); // n < 10
    }

    #[test]
    fn c_star_moves_the_block_border_robot() {
        // From C* the robot at the border of the big block closest to the
        // single robot moves towards it (proof of Theorem 6).
        let c = cfg(&[0, 0, 0, 1, 6]); // k=5, n=12, robots 0,1,2,3,5
        let movers = enabled_movers(&c);
        assert_eq!(movers.len(), 1);
        // The block is 0..3, the single robot is 5; the border robot closest
        // to it is node 3, which must move towards node 4.
        assert_eq!(movers[0].0, 3);
    }

    #[test]
    fn exactly_one_mover_in_every_reachable_phase2_configuration() {
        for (n, k) in [
            (12usize, 5usize),
            (11, 5),
            (13, 6),
            (14, 7),
            (15, 9),
            (16, 5),
        ] {
            let mut gaps = vec![0; k - 2];
            gaps.push(1);
            gaps.push(n - k - 1);
            let mut config = cfg(&gaps);
            assert_eq!(config.n(), n);
            // Walk the deterministic cycle for several periods.
            let period = n - k + 1;
            for step in 0..(6 * period * k) {
                let movers = enabled_movers(&config);
                assert_eq!(
                    movers.len(),
                    1,
                    "n={n} k={k} step={step} config={config}: movers {movers:?}"
                );
                assert!(
                    symmetry::is_rigid(&config),
                    "n={n} k={k} {config} not rigid"
                );
                assert!(
                    classes::classify(&View::new(config.gap_sequence())).is_some(),
                    "n={n} k={k} config {config} left the set A"
                );
                let (node, decision) = movers[0];
                let dir = match decision {
                    Decision::Move(ViewIndex::First) => Direction::Cw,
                    Decision::Move(ViewIndex::Second) => Direction::Ccw,
                    Decision::Idle => unreachable!(),
                };
                config.move_robot_dir(node, dir).unwrap();
            }
        }
    }

    #[test]
    fn phase2_cycle_visits_all_classes_in_order() {
        let k = 5;
        let n = 13;
        let mut config = cfg(&[0, 0, 0, 1, 7]);
        let mut seen = Vec::new();
        for _ in 0..(3 * (n - k + 1)) {
            let class = classes::classify(&View::new(config.gap_sequence())).unwrap();
            if seen.last() != Some(&class) {
                seen.push(class);
            }
            let movers = enabled_movers(&config);
            let (node, decision) = movers[0];
            let dir = match decision {
                Decision::Move(ViewIndex::First) => Direction::Cw,
                Decision::Move(ViewIndex::Second) => Direction::Ccw,
                Decision::Idle => unreachable!(),
            };
            config.move_robot_dir(node, dir).unwrap();
        }
        // Strip the initial A-f entry and check the cyclic order afterwards.
        assert_eq!(seen[0], AClass::Af);
        let cycle: Vec<AClass> = seen[1..].to_vec();
        let expected = [AClass::Aa, AClass::Ab, AClass::Ac, AClass::Ad, AClass::Ae];
        for (i, class) in cycle.iter().enumerate() {
            assert_eq!(
                *class,
                expected[i % expected.len()],
                "position {i} in {cycle:?}"
            );
        }
    }

    #[test]
    fn perpetual_clearing_and_exploration_round_robin() {
        // n = 12, k = 5: run long enough to see several clearings and at least
        // one full exploration sweep by every robot.
        let initial = cfg(&[0, 2, 1, 0, 4]); // rigid, n = 12, k = 5
        assert!(symmetry::is_rigid(&initial));
        let mut sched = RoundRobinScheduler::new();
        let stats =
            run_searching(RingClearingProtocol, &initial, &mut sched, 0, 0, 60_000).unwrap();
        assert!(stats.clearings >= 5, "only {} clearings", stats.clearings);
        assert!(
            stats.min_exploration_completions >= 1,
            "exploration completions: {}",
            stats.min_exploration_completions
        );
    }

    #[test]
    fn perpetual_clearing_under_semi_synchronous_and_asynchronous_adversaries() {
        let initial = cfg(&[0, 0, 2, 1, 0, 5]); // rigid, n = 14, k = 6
        assert!(symmetry::is_rigid(&initial));
        for seed in [3u64, 17] {
            let mut ssync = SemiSynchronousScheduler::seeded(seed);
            let stats =
                run_searching(RingClearingProtocol, &initial, &mut ssync, 0, 0, 40_000).unwrap();
            assert!(
                stats.clearings >= 3,
                "ssync seed {seed}: {} clearings",
                stats.clearings
            );

            let mut asynch = AsynchronousScheduler::seeded(seed);
            let stats =
                run_searching(RingClearingProtocol, &initial, &mut asynch, 0, 0, 80_000).unwrap();
            assert!(
                stats.clearings >= 3,
                "async seed {seed}: {} clearings",
                stats.clearings
            );
        }
    }

    #[test]
    fn clearing_period_matches_the_cycle_length() {
        // In steady state the ring is cleared exactly once per phase-2 cycle,
        // which takes n - k moves (the walking robot covers the long gap, the
        // block border robot steps once, the walking robot closes in).
        for (n, k, gaps) in [
            (13usize, 5usize, vec![0, 0, 0, 1, 7]),
            (14, 6, vec![0, 0, 0, 0, 1, 7]),
            (16, 7, vec![0, 0, 0, 0, 0, 1, 8]),
        ] {
            let initial = cfg(&gaps);
            assert_eq!(initial.n(), n);
            let mut sched = RoundRobinScheduler::new();
            let stats =
                run_searching(RingClearingProtocol, &initial, &mut sched, 0, 0, 40_000).unwrap();
            assert!(stats.clearings >= 4);
            let steady: Vec<u64> = stats.clearing_intervals.iter().copied().skip(1).collect();
            for interval in &steady {
                assert_eq!(
                    *interval,
                    (n - k) as u64,
                    "n={n} k={k} intervals {:?}",
                    stats.clearing_intervals
                );
            }
        }
    }

    #[test]
    fn phase1_reaches_the_cycle_from_every_rigid_configuration() {
        // Exhaustive over all rigid configurations for a small instance:
        // the protocol must eventually reach the set A and start clearing.
        let (n, k) = (11usize, 5usize);
        for config in enumerate_rigid_configurations(n, k) {
            let mut sched = RoundRobinScheduler::new();
            let stats = run_searching(RingClearingProtocol, &config, &mut sched, 0, 0, 20_000)
                .unwrap_or_else(|e| panic!("{config}: {e}"));
            assert!(
                stats.clearings >= 2,
                "{config}: {} clearings",
                stats.clearings
            );
        }
    }

    #[test]
    fn decision_is_insensitive_to_view_order() {
        let configs = [
            cfg(&[0, 0, 0, 1, 6]),
            cfg(&[0, 0, 1, 0, 6]),
            cfg(&[0, 0, 1, 1, 5]),
            cfg(&[0, 0, 1, 4, 2]),
            cfg(&[0, 1, 0, 4, 2]),
            cfg(&[0, 1, 0, 5, 1]),
            cfg(&[0, 2, 1, 0, 4]),
        ];
        for config in &configs {
            for v in config.occupied_nodes() {
                let cw = Snapshot::capture(config, v, MultiplicityCapability::None, Direction::Cw);
                let ccw =
                    Snapshot::capture(config, v, MultiplicityCapability::None, Direction::Ccw);
                match (
                    RingClearingProtocol.compute(&cw),
                    RingClearingProtocol.compute(&ccw),
                ) {
                    (Decision::Idle, Decision::Idle) => {}
                    (Decision::Move(a), Decision::Move(b)) => {
                        if cw.views[0] != cw.views[1] {
                            assert_eq!(a.index(), 1 - b.index(), "{config} node {v}");
                        }
                    }
                    other => panic!("inconsistent {other:?} for {config} node {v}"),
                }
            }
        }
    }

    #[test]
    fn small_teams_idle() {
        let c = cfg(&[0, 0, 1, 3]); // k = 4
        for v in c.occupied_nodes() {
            let s = Snapshot::capture(&c, v, MultiplicityCapability::None, Direction::Cw);
            assert_eq!(RingClearingProtocol.compute(&s), Decision::Idle);
        }
    }

    #[test]
    fn guard_functions_reject_short_views() {
        assert!(!moves_towards_last_interval(&View::new(vec![0, 1, 3])));
        assert!(!moves_towards_first_interval(&View::new(vec![3, 1, 0])));
    }
}
