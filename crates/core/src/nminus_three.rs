//! Algorithm **NminusThree** (Section 4.4 of the paper): exclusive perpetual
//! graph searching and exploration of an `n`-node ring (`n ≥ 10`) with
//! exactly `k = n - 3` robots, starting from any rigid exclusive
//! configuration.
//!
//! With three empty nodes the ring decomposes into three (possibly empty)
//! blocks of adjacent robots whose sizes are denoted `A < B < C` (rigidity
//! makes them pairwise distinct).  The algorithm:
//!
//! * **Phase 1** reshapes the configuration into one of the three *final*
//!   configurations `(0,2,k-2)`, `(0,3,k-3)`, `(1,2,k-3)` using rules
//!   R1.1–R1.3;
//! * **Phase 2** cycles forever through the three final configurations using
//!   rules R2.1–R2.3, clearing every edge of the ring in every period of
//!   three moves (Theorem 7).

use rr_corda::{Decision, MultiplicityCapability, Protocol, Snapshot, ViewIndex};
use rr_ring::View;
use serde::{Deserialize, Serialize};

use crate::analysis::relative_occupancy;

/// The NminusThree protocol.
#[derive(Debug, Default, Clone, Copy)]
pub struct NminusThreeProtocol;

/// The rule the algorithm applies in a given configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rule {
    /// Phase 1: `A > 0` — move towards `C` the robot of `A` closest to `C`.
    R1x1,
    /// Phase 1: `A = 0`, `B = 1` — move towards `B` the robot of `C` closest to `B`.
    R1x2,
    /// Phase 1: `A = 0`, `B > 3` — move towards `C` the robot of `B` closest to `C`.
    R1x3,
    /// Phase 2, from `(0, 2, k-2)` — move towards `B` the robot of `C` closest to `B`.
    R2x1,
    /// Phase 2, from `(0, 3, k-3)` — move towards `A` the robot of `B` closest to `A`.
    R2x2,
    /// Phase 2, from `(1, 2, k-3)` — move the robot of `A` towards `C`.
    R2x3,
}

/// The block decomposition of a `k = n-3` configuration: the three arcs of
/// occupied nodes delimited by the three empty nodes, in the cyclic order of
/// the view it was computed from.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Arcs {
    /// Relative positions (in the reading direction of the view, 0 = the
    /// observing robot) of the three empty nodes, in increasing order.
    empties: [usize; 3],
    /// Sizes of the arcs: `sizes[i]` is the number of occupied nodes strictly
    /// between `empties[i]` and `empties[(i+1) % 3]` (walking forward).
    sizes: [usize; 3],
    /// Ring size.
    n: usize,
}

impl Arcs {
    fn from_view(view: &View) -> Option<Arcs> {
        let occ = relative_occupancy(view);
        let n = occ.len();
        let empties: Vec<usize> = (0..n).filter(|&i| !occ[i]).collect();
        if empties.len() != 3 {
            return None;
        }
        let empties = [empties[0], empties[1], empties[2]];
        let mut sizes = [0usize; 3];
        for i in 0..3 {
            let from = empties[i];
            let to = empties[(i + 1) % 3];
            sizes[i] = (to + n - from) % n - 1;
        }
        Some(Arcs { empties, sizes, n })
    }

    /// Sorted sizes `(A, B, C)`.
    fn sorted_sizes(&self) -> (usize, usize, usize) {
        let mut s = self.sizes;
        s.sort_unstable();
        (s[0], s[1], s[2])
    }

    /// Index of the arc with the given size (sizes are pairwise distinct for
    /// rigid configurations, so this is unambiguous).
    fn arc_with_size(&self, size: usize) -> usize {
        self.sizes
            .iter()
            .position(|&s| s == size)
            .expect("size present")
    }

    /// The empty node shared by arcs `x` and `y` when they are considered as
    /// cyclically adjacent (each pair of arcs shares exactly one empty node on
    /// its "short" side).
    fn shared_empty(&self, x: usize, y: usize) -> usize {
        debug_assert!(x != y);
        if (x + 1) % 3 == y {
            self.empties[y]
        } else {
            // y precedes x: the shared empty node is the one before arc x.
            self.empties[x]
        }
    }

    /// The move prescribed by "the robot of arc `x` closest to arc `y` moves
    /// towards `y`": returns the mover's relative position and the step
    /// (+1 = the reading direction of the underlying view, -1 = the other).
    ///
    /// Returns `None` if arc `x` is empty.
    fn mover_towards(&self, x: usize, y: usize) -> Option<(usize, isize)> {
        if self.sizes[x] == 0 {
            return None;
        }
        let e = self.shared_empty(x, y);
        if (x + 1) % 3 == y {
            // The shared empty node follows arc x: the mover is just before it
            // and steps forward onto it.
            Some(((e + self.n - 1) % self.n, 1))
        } else {
            // The shared empty node precedes arc x: the mover is just after it
            // and steps backward onto it.
            Some(((e + 1) % self.n, -1))
        }
    }
}

impl NminusThreeProtocol {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        NminusThreeProtocol
    }

    /// Whether the parameters are in the range covered by Theorem 7.
    #[must_use]
    pub fn supports(n: usize, k: usize) -> bool {
        n >= 10 && k + 3 == n
    }

    /// The rule applied in a configuration with sorted block sizes
    /// `(a, b, c)` (for `k = a + b + c = n - 3` robots).
    ///
    /// Returns `None` when the sizes are not pairwise distinct (the
    /// configuration is not rigid) or no rule applies.
    #[must_use]
    pub fn rule_for(a: usize, b: usize, c: usize, k: usize) -> Option<Rule> {
        if a == b || b == c {
            return None;
        }
        if (a, b, c) == (0, 2, k - 2) {
            Some(Rule::R2x1)
        } else if (a, b, c) == (0, 3, k - 3) {
            Some(Rule::R2x2)
        } else if (a, b, c) == (1, 2, k - 3) {
            Some(Rule::R2x3)
        } else if a > 0 {
            Some(Rule::R1x1)
        } else if b == 1 {
            Some(Rule::R1x2)
        } else if b > 3 {
            Some(Rule::R1x3)
        } else {
            None
        }
    }

    /// The decision for a robot whose two directional views are `views`.
    #[must_use]
    pub fn decide(views: &[View; 2]) -> Decision {
        let k = views[0].len();
        let n = k + views[0].total_gap();
        if !Self::supports(n, k) {
            return Decision::Idle;
        }
        // Work in the frame of views[0]; a positive step means "move in the
        // reading direction of views[0]".
        let Some(arcs) = Arcs::from_view(&views[0]) else {
            return Decision::Idle;
        };
        let (a, b, c) = arcs.sorted_sizes();
        let Some(rule) = Self::rule_for(a, b, c, k) else {
            return Decision::Idle;
        };
        let (from_size, to_size) = match rule {
            Rule::R1x1 => (a, c),
            Rule::R1x2 | Rule::R2x1 => (c, b),
            Rule::R1x3 => (b, c),
            Rule::R2x2 => (b, a),
            Rule::R2x3 => (a, c),
        };
        let x = arcs.arc_with_size(from_size);
        let y = arcs.arc_with_size(to_size);
        let Some((mover, step)) = arcs.mover_towards(x, y) else {
            return Decision::Idle;
        };
        if mover != 0 {
            return Decision::Idle;
        }
        if step == 1 {
            Decision::Move(ViewIndex::First)
        } else {
            Decision::Move(ViewIndex::Second)
        }
    }
}

impl Protocol for NminusThreeProtocol {
    fn name(&self) -> &str {
        "n-minus-three"
    }

    fn capability(&self) -> MultiplicityCapability {
        MultiplicityCapability::None
    }

    fn requires_exclusivity(&self) -> bool {
        true
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        NminusThreeProtocol::decide(&snapshot.views)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clearing::run_searching;
    use rr_corda::scheduler::{
        AsynchronousScheduler, RoundRobinScheduler, SemiSynchronousScheduler,
    };
    use rr_corda::Simulator;
    use rr_corda::SimulatorOptions;
    use rr_ring::enumerate::enumerate_rigid_configurations;
    use rr_ring::{symmetry, Configuration, Direction};

    fn enabled_movers(config: &Configuration) -> Vec<(usize, Decision)> {
        config
            .occupied_nodes()
            .into_iter()
            .filter_map(|v| {
                let s = Snapshot::capture(config, v, MultiplicityCapability::None, Direction::Cw);
                let d = NminusThreeProtocol.compute(&s);
                d.is_move().then_some((v, d))
            })
            .collect()
    }

    fn block_sizes(config: &Configuration) -> Vec<usize> {
        let mut sizes: Vec<usize> = config.occupied_blocks().iter().map(Vec::len).collect();
        while sizes.len() < 3 {
            sizes.push(0);
        }
        sizes.sort_unstable();
        sizes
    }

    #[test]
    fn supports_exactly_k_equals_n_minus_3() {
        assert!(NminusThreeProtocol::supports(10, 7));
        assert!(NminusThreeProtocol::supports(15, 12));
        assert!(!NminusThreeProtocol::supports(9, 6));
        assert!(!NminusThreeProtocol::supports(12, 8));
    }

    #[test]
    fn rule_selection_matches_the_pseudocode() {
        let k = 9; // n = 12
        assert_eq!(NminusThreeProtocol::rule_for(0, 2, 7, k), Some(Rule::R2x1));
        assert_eq!(NminusThreeProtocol::rule_for(0, 3, 6, k), Some(Rule::R2x2));
        assert_eq!(NminusThreeProtocol::rule_for(1, 2, 6, k), Some(Rule::R2x3));
        assert_eq!(NminusThreeProtocol::rule_for(1, 3, 5, k), Some(Rule::R1x1));
        assert_eq!(NminusThreeProtocol::rule_for(2, 3, 4, k), Some(Rule::R1x1));
        assert_eq!(NminusThreeProtocol::rule_for(0, 1, 8, k), Some(Rule::R1x2));
        assert_eq!(NminusThreeProtocol::rule_for(0, 4, 5, k), Some(Rule::R1x3));
        assert_eq!(NminusThreeProtocol::rule_for(1, 1, 7, k), None);
        assert_eq!(NminusThreeProtocol::rule_for(3, 3, 3, k), None);
    }

    #[test]
    fn exactly_one_mover_in_every_rigid_configuration() {
        for n in [10usize, 11, 12] {
            let k = n - 3;
            for config in enumerate_rigid_configurations(n, k) {
                let movers = enabled_movers(&config);
                assert_eq!(movers.len(), 1, "n={n} {config}: movers {movers:?}");
            }
        }
    }

    #[test]
    fn phase2_cycles_through_the_three_final_configurations() {
        let n = 12usize;
        let k = n - 3;
        // Start in the final configuration (0, 2, k-2).
        let mut gaps = vec![0usize; 1]; // block of 2 robots => 1 zero
        gaps.push(1); // one empty node
        gaps.extend(std::iter::repeat_n(0, k - 3)); // block of k-2 robots
        gaps.push(2); // two adjacent empty nodes
        let config = Configuration::from_gaps_at_origin(&gaps);
        assert_eq!(config.n(), n);
        assert_eq!(block_sizes(&config), vec![0, 2, k - 2]);

        let mut current = config;
        let mut seen = Vec::new();
        for _ in 0..9 {
            seen.push(block_sizes(&current));
            let movers = enabled_movers(&current);
            assert_eq!(movers.len(), 1, "{current}");
            let (node, decision) = movers[0];
            let dir = match decision {
                Decision::Move(ViewIndex::First) => Direction::Cw,
                Decision::Move(ViewIndex::Second) => Direction::Ccw,
                Decision::Idle => unreachable!(),
            };
            current.move_robot_dir(node, dir).unwrap();
        }
        let expected_cycle = [vec![0, 2, k - 2], vec![0, 3, k - 3], vec![1, 2, k - 3]];
        for (i, sizes) in seen.iter().enumerate() {
            assert_eq!(*sizes, expected_cycle[i % 3], "step {i}: {seen:?}");
        }
    }

    #[test]
    fn phase1_reaches_a_final_configuration_from_every_rigid_start() {
        for n in [10usize, 11, 12] {
            let k = n - 3;
            for config in enumerate_rigid_configurations(n, k) {
                let mut sim = Simulator::new(
                    NminusThreeProtocol,
                    config.clone(),
                    SimulatorOptions::for_protocol(&NminusThreeProtocol),
                )
                .unwrap();
                let mut sched = RoundRobinScheduler::new();
                let report = sim.run_until(&mut sched, 50_000, |s| {
                    let sizes = block_sizes(s.configuration());
                    sizes == vec![0, 2, k - 2]
                        || sizes == vec![0, 3, k - 3]
                        || sizes == vec![1, 2, k - 3]
                });
                assert!(report.succeeded(), "n={n} from {config}");
                // All intermediate configurations stay rigid (checked cheaply
                // here by re-checking the final one).
                assert!(symmetry::is_rigid(sim.configuration()));
            }
        }
    }

    #[test]
    fn perpetual_clearing_with_n_minus_3_robots() {
        for n in [10usize, 12, 14] {
            let k = n - 3;
            let config = enumerate_rigid_configurations(n, k)
                .into_iter()
                .next()
                .expect("a rigid configuration exists");
            let mut sched = RoundRobinScheduler::new();
            let stats =
                run_searching(NminusThreeProtocol, &config, &mut sched, 0, 0, 40_000).unwrap();
            assert!(stats.clearings >= 5, "n={n}: {} clearings", stats.clearings);
            assert!(
                stats.min_exploration_completions >= 1,
                "n={n}: exploration {}",
                stats.min_exploration_completions
            );
        }
    }

    #[test]
    fn steady_state_clearing_period_is_three_moves() {
        let n = 12usize;
        let k = n - 3;
        let mut gaps = vec![0usize; 1];
        gaps.push(1);
        gaps.extend(std::iter::repeat_n(0, k - 3));
        gaps.push(2);
        let config = Configuration::from_gaps_at_origin(&gaps);
        let mut sched = RoundRobinScheduler::new();
        let stats = run_searching(NminusThreeProtocol, &config, &mut sched, 0, 0, 30_000).unwrap();
        assert!(stats.clearings >= 5);
        let steady: Vec<u64> = stats.clearing_intervals.iter().copied().skip(1).collect();
        for interval in steady {
            assert_eq!(interval, 3, "intervals {:?}", stats.clearing_intervals);
        }
    }

    #[test]
    fn works_under_adversarial_schedulers() {
        let n = 11usize;
        let k = n - 3;
        let config = enumerate_rigid_configurations(n, k)
            .into_iter()
            .next()
            .unwrap();
        for seed in [5u64, 23] {
            let mut ssync = SemiSynchronousScheduler::seeded(seed);
            let stats =
                run_searching(NminusThreeProtocol, &config, &mut ssync, 0, 0, 40_000).unwrap();
            assert!(stats.clearings >= 3, "ssync seed {seed}");
            let mut asynch = AsynchronousScheduler::seeded(seed);
            let stats =
                run_searching(NminusThreeProtocol, &config, &mut asynch, 0, 0, 80_000).unwrap();
            assert!(stats.clearings >= 3, "async seed {seed}");
        }
    }

    #[test]
    fn decision_is_insensitive_to_view_order() {
        for config in enumerate_rigid_configurations(11, 8) {
            for v in config.occupied_nodes() {
                let cw = Snapshot::capture(&config, v, MultiplicityCapability::None, Direction::Cw);
                let ccw =
                    Snapshot::capture(&config, v, MultiplicityCapability::None, Direction::Ccw);
                match (
                    NminusThreeProtocol.compute(&cw),
                    NminusThreeProtocol.compute(&ccw),
                ) {
                    (Decision::Idle, Decision::Idle) => {}
                    (Decision::Move(a), Decision::Move(b)) => {
                        if cw.views[0] != cw.views[1] {
                            assert_eq!(a.index(), 1 - b.index(), "{config} node {v}");
                        }
                    }
                    other => panic!("inconsistent {other:?} for {config} node {v}"),
                }
            }
        }
    }

    #[test]
    fn wrong_parameters_idle() {
        // k != n - 3: the protocol refuses to move.
        let config = Configuration::from_gaps_at_origin(&[0, 1, 2, 5]);
        for v in config.occupied_nodes() {
            let s = Snapshot::capture(&config, v, MultiplicityCapability::None, Direction::Cw);
            assert_eq!(NminusThreeProtocol.compute(&s), Decision::Idle);
        }
    }
}
