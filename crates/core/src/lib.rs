//! # rr-core — the paper's algorithms
//!
//! This crate implements the algorithms of
//! *"A unified approach for different tasks on rings in robot-based computing
//! systems"* (D'Angelo, Di Stefano, Navarra, Nisse, Suchan) as
//! [`rr_corda::Protocol`]s:
//!
//! * [`align`] — Algorithm **Align** (Section 3): starting from any rigid
//!   exclusive configuration, reach the special configuration `C*` by
//!   repeatedly reducing the supermin configuration view with the four
//!   reduction rules;
//! * [`clearing`] — Algorithm **Ring Clearing** (Section 4.3): perpetual
//!   exclusive graph searching *and* perpetual exclusive exploration for
//!   `5 ≤ k < n-3`, `n ≥ 10` (except `k = 5, n = 10`), by cycling through the
//!   configuration classes A-a … A-f after a first Align phase;
//! * [`nminus_three`] — Algorithm **NminusThree** (Section 4.4): perpetual
//!   exclusive graph searching and exploration with `k = n - 3` robots;
//! * [`gathering`] — Algorithm **Gathering** (Section 5): gathering with local
//!   multiplicity detection for `2 < k < n - 2`, by contracting `C*`-type
//!   configurations;
//! * [`unified`] — the unified dispatcher mapping a task and parameters to the
//!   protocol that solves it;
//! * [`driver`] — the generic engine loop ([`driver::drive`]) and the task
//!   driver ([`driver::run_task`]) that every run harness in this workspace
//!   is a thin wrapper over;
//! * [`feasibility`] — the (almost complete) characterization of exclusive
//!   perpetual graph searching on rings, plus the feasibility maps for the
//!   other two tasks;
//! * [`invariant`] — the per-task safety/liveness [`Invariant`]s the
//!   exhaustive model checker (`rr_checker::explore`) enforces along every
//!   scheduler interleaving;
//! * [`baselines`] — simple comparison protocols used in the paper's
//!   discussion and in the ablation experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod analysis;
pub mod baselines;
pub mod clearing;
pub mod driver;
pub mod feasibility;
pub mod gathering;
pub mod invariant;
pub mod nminus_three;
pub mod relabel;
pub mod unified;

pub use align::AlignProtocol;
pub use clearing::RingClearingProtocol;
pub use driver::{
    drive, drive_with, run_dispatched, run_task, TaskError, TaskRunReport, TaskStats, TaskTargets,
};
pub use feasibility::{searching_feasibility, Feasibility, ImpossibilityReason};
pub use gathering::GatheringProtocol;
pub use invariant::{
    AlignmentInvariant, AugState, CrashTolerantGatheringInvariant, EventualGatheringInvariant,
    GatheringInvariant, Invariant, LivenessMode, SearchingInvariant, StateView,
};
pub use nminus_three::NminusThreeProtocol;
pub use relabel::{relabel_onto, RobotPerm};
pub use unified::{protocol_for, Task, UnifiedProtocol};
