//! Algorithm **Gathering** (Section 5 of the paper): gather `2 < k < n-2`
//! robots on a single node, starting from any rigid exclusive configuration,
//! using only the *local* (weak) multiplicity detection capability.
//!
//! The algorithm has three stages, all decided locally:
//!
//! 1. while the occupied-node set is not of `C*`-type, run Algorithm
//!    [`Align`](crate::align) (the configuration is still exclusive and
//!    rigid during this stage);
//! 2. while more than two nodes are occupied, apply **Contraction**: the
//!    robot(s) on the *first* node of the `C*`-type configuration (the block
//!    end adjacent to the large interval) move onto their neighbour in the
//!    block, which accumulates all robots into a single growing multiplicity;
//! 3. when exactly two nodes remain occupied (a multiplicity of `k-1` robots
//!    and a single robot at distance two), the single robot — the only one
//!    that does not perceive a multiplicity on its own node — walks to the
//!    multiplicity, completing the gathering.
//!
//! ### Faithfulness note (documented deviation)
//!
//! In Figure 14 of the paper the two-occupied-nodes case is syntactically
//! nested under the `C*`-type branch although such a configuration has only
//! two occupied nodes and therefore is not `C*`-type by the paper's own
//! definition (which requires at least three).  We treat "at most two occupied
//! nodes" as its own case, which is what the proof of Theorem 8 describes.
//! See DESIGN.md §2.

use rr_corda::{
    Decision, LeapPlan, MultiplicityCapability, Protocol, Scheduler, SimError, Snapshot, ViewIndex,
};
use rr_ring::{pattern, Configuration, Direction, View};
use serde::{Deserialize, Serialize};

use crate::align::AlignProtocol;
use crate::driver::{run_task, TaskTargets};
use crate::unified::Task;

/// The Gathering protocol.
#[derive(Debug, Default, Clone, Copy)]
pub struct GatheringProtocol;

impl GatheringProtocol {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        GatheringProtocol
    }

    /// Whether the parameters are in the range covered by Theorem 8
    /// (`2 < k < n - 2`; outside this range no rigid configuration exists).
    #[must_use]
    pub fn supports(n: usize, k: usize) -> bool {
        k > 2 && k + 2 < n
    }

    /// The decision for a robot with the given views and local multiplicity
    /// flag.
    #[must_use]
    pub fn decide(views: &[View; 2], on_multiplicity: bool) -> Decision {
        let occupied = views[0].len();
        if occupied == 1 {
            // Gathered: never move again.
            return Decision::Idle;
        }
        if occupied == 2 {
            if on_multiplicity {
                return Decision::Idle;
            }
            // Walk towards the other occupied node along the shorter arc.
            let d0 = views[0].gap(0);
            let d1 = views[1].gap(0);
            return if d0 <= d1 {
                Decision::Move(ViewIndex::First)
            } else {
                Decision::Move(ViewIndex::Second)
            };
        }
        let w_min = views[0].supermin();
        if pattern::is_c_star_type(w_min.gaps()) {
            // Contraction: only the robot(s) on the first node of the
            // C*-type configuration move, towards the second node (gap 0
            // ahead in the direction reading the supermin view).
            if views[0] == w_min {
                Decision::Move(ViewIndex::First)
            } else if views[1] == w_min {
                Decision::Move(ViewIndex::Second)
            } else {
                Decision::Idle
            }
        } else {
            AlignProtocol::decide(views)
        }
    }
}

impl Protocol for GatheringProtocol {
    fn name(&self) -> &str {
        "gathering"
    }

    fn capability(&self) -> MultiplicityCapability {
        MultiplicityCapability::Local
    }

    fn requires_exclusivity(&self) -> bool {
        false
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        let on_multiplicity = snapshot.on_multiplicity.unwrap_or(false);
        GatheringProtocol::decide(&snapshot.views, on_multiplicity)
    }

    fn leap_plan(
        &self,
        config: &Configuration,
        first_dir: Direction,
        capability: MultiplicityCapability,
        plan: &mut LeapPlan,
    ) -> bool {
        plan.clear();
        let occupied = config.num_occupied();
        if occupied == 1 {
            // Gathered: every robot idles forever.
            plan.horizon = u64::MAX;
            return true;
        }
        if occupied != 2 {
            // Align and Contraction decisions depend on the full gap
            // pattern (supermin views), which shifts every round: no cheap
            // round-stability certificate there.
            return false;
        }
        // Endgame: the single robot walks to the multiplicity.  Its decision
        // relies on *perceiving* the multiplicity locally, so without the
        // capability the certificate below does not describe what robots do.
        if capability == MultiplicityCapability::None {
            return false;
        }
        let a = config.occupied_anchor();
        let b = config.occupied_after(a, Direction::Cw);
        let walker = match (config.count_at(a) == 1, config.count_at(b) == 1) {
            (true, false) => a,
            (false, true) => b,
            // Two single robots chase (and possibly orbit) each other — the
            // shorter-arc decision is not stable; two multiplicities cannot
            // arise from a rigid start.  Decline both.
            _ => return false,
        };
        let mult = if walker == a { b } else { a };
        let n = config.n();
        let gap_cw = (mult + n - walker - 1) % n;
        let gap_ccw = (walker + n - mult - 1) % n;
        // Mirrors `decide`: first-view gap wins ties, and views[0] reads in
        // `first_dir`.  The chosen arc only shrinks as the walker advances,
        // so the decision is stable for the whole approach; the multiplicity
        // idles throughout.  The final round merges the walker in (the one
        // permitted occupancy-structure change, at the end of the horizon).
        let (vel, gap) = if gap_cw < gap_ccw || (gap_cw == gap_ccw && first_dir == Direction::Cw) {
            (1i8, gap_cw)
        } else {
            (-1i8, gap_ccw)
        };
        plan.velocities.push((walker, vel));
        plan.horizon = gap as u64 + 1;
        true
    }
}

/// Statistics of a gathering run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatheringRunStats {
    /// Whether all robots ended on a single node.
    pub gathered: bool,
    /// Number of moves executed until gathering (or until the budget ran out).
    pub moves: u64,
    /// Number of scheduler steps applied.
    pub steps: u64,
    /// Whether the run ever reached a gathered state and then left it (a
    /// correct execution never does).
    pub broke_gathering: bool,
}

/// Runs the gathering protocol from `initial` under `scheduler` until all
/// robots stand on one node or the step budget is exhausted.
///
/// Thin wrapper over the generic task driver
/// [`run_task`](crate::driver::run_task()).
pub fn run_gathering<S: Scheduler + ?Sized>(
    initial: &Configuration,
    scheduler: &mut S,
    max_scheduler_steps: u64,
) -> Result<GatheringRunStats, SimError> {
    let report = run_task(
        Task::Gathering,
        GatheringProtocol,
        initial,
        scheduler,
        TaskTargets::open_ended(),
        max_scheduler_steps,
    )?;
    Ok(report
        .gathering()
        .expect("gathering task yields gathering stats"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_corda::scheduler::{
        AsynchronousScheduler, FullySynchronousScheduler, RoundRobinScheduler,
        SemiSynchronousScheduler,
    };
    use rr_ring::enumerate::enumerate_rigid_configurations;
    use rr_ring::{Direction, Ring};

    fn cfg(gaps: &[usize]) -> Configuration {
        Configuration::from_gaps_at_origin(gaps)
    }

    #[test]
    fn supports_matches_theorem_8() {
        assert!(GatheringProtocol::supports(8, 4));
        assert!(GatheringProtocol::supports(100, 3));
        assert!(GatheringProtocol::supports(10, 7));
        assert!(!GatheringProtocol::supports(8, 2));
        assert!(!GatheringProtocol::supports(8, 6));
        assert!(!GatheringProtocol::supports(8, 7));
    }

    #[test]
    fn contraction_moves_only_the_first_node() {
        // C* for k = 5, n = 12: robots at 0,1,2,3 and 5; the first node is the
        // block end adjacent to the large interval, i.e. node 0.
        let c = cfg(&[0, 0, 0, 1, 6]);
        let mut movers = Vec::new();
        for v in c.occupied_nodes() {
            let s = Snapshot::capture(&c, v, MultiplicityCapability::Local, Direction::Cw);
            if GatheringProtocol.compute(&s).is_move() {
                movers.push(v);
            }
        }
        assert_eq!(movers, vec![0]);
    }

    #[test]
    fn contraction_direction_enters_the_block() {
        let c = cfg(&[0, 0, 0, 1, 6]);
        let s = Snapshot::capture(&c, 0, MultiplicityCapability::Local, Direction::Cw);
        // views[0] is the cw view (0,0,0,1,6) = supermin, so the robot moves
        // in that direction, onto node 1.
        assert_eq!(
            GatheringProtocol.compute(&s),
            Decision::Move(ViewIndex::First)
        );
        let s = Snapshot::capture(&c, 0, MultiplicityCapability::Local, Direction::Ccw);
        assert_eq!(
            GatheringProtocol.compute(&s),
            Decision::Move(ViewIndex::Second)
        );
    }

    #[test]
    fn two_nodes_only_the_single_robot_moves() {
        let ring = Ring::new(10);
        let c = Configuration::from_counts(ring, vec![4, 0, 1, 0, 0, 0, 0, 0, 0, 0]).unwrap();
        // Node 0 holds 4 robots (multiplicity), node 2 a single robot.
        let multi = Snapshot::capture(&c, 0, MultiplicityCapability::Local, Direction::Cw);
        assert_eq!(GatheringProtocol.compute(&multi), Decision::Idle);
        let single = Snapshot::capture(&c, 2, MultiplicityCapability::Local, Direction::Cw);
        let d = GatheringProtocol.compute(&single);
        // The single robot at node 2 must walk towards node 0 (distance 2 via
        // node 1, versus 8 the other way); cw from node 2 goes away from 0.
        assert_eq!(d, Decision::Move(ViewIndex::Second));
    }

    #[test]
    fn gathered_configuration_is_silent() {
        let ring = Ring::new(9);
        let c = Configuration::from_counts(ring, vec![0, 0, 5, 0, 0, 0, 0, 0, 0]).unwrap();
        let s = Snapshot::capture(&c, 2, MultiplicityCapability::Local, Direction::Cw);
        assert_eq!(GatheringProtocol.compute(&s), Decision::Idle);
    }

    #[test]
    fn gathering_succeeds_from_c_star() {
        let c = cfg(&[0, 0, 0, 1, 6]);
        let mut sched = RoundRobinScheduler::new();
        let stats = run_gathering(&c, &mut sched, 50_000).unwrap();
        assert!(stats.gathered);
        assert!(!stats.broke_gathering);
        // k-1 contraction-phase moves of the accumulating multiplicity plus
        // the final approach of the single robot: the exact count depends on
        // the schedule, but it is at least k+1 and finite.
        assert!(stats.moves >= (5 + 1) as u64);
    }

    #[test]
    fn gathering_succeeds_from_every_rigid_configuration_small() {
        for (n, k) in [(8usize, 4usize), (9, 5), (10, 3), (11, 6)] {
            for config in enumerate_rigid_configurations(n, k) {
                let mut sched = RoundRobinScheduler::new();
                let stats = run_gathering(&config, &mut sched, 100_000)
                    .unwrap_or_else(|e| panic!("{config}: {e}"));
                assert!(stats.gathered, "not gathered from {config}");
                assert!(!stats.broke_gathering, "gathering broken from {config}");
            }
        }
    }

    #[test]
    fn gathering_succeeds_under_every_scheduler() {
        let config = cfg(&[0, 2, 1, 0, 4, 3]); // rigid, n = 16, k = 6
        let mut fsync = FullySynchronousScheduler;
        assert!(
            run_gathering(&config, &mut fsync, 100_000)
                .unwrap()
                .gathered
        );
        let mut ssync = SemiSynchronousScheduler::seeded(11);
        assert!(
            run_gathering(&config, &mut ssync, 100_000)
                .unwrap()
                .gathered
        );
        let mut asynch = AsynchronousScheduler::seeded(13);
        assert!(
            run_gathering(&config, &mut asynch, 400_000)
                .unwrap()
                .gathered
        );
        let mut rr = RoundRobinScheduler::new();
        assert!(run_gathering(&config, &mut rr, 100_000).unwrap().gathered);
    }

    #[test]
    fn gathering_works_for_minimum_team_size() {
        // k = 3 (the smallest supported team) on various ring sizes.
        for n in [6usize, 7, 9, 15] {
            let config = enumerate_rigid_configurations(n, 3)
                .into_iter()
                .next()
                .expect("a rigid configuration exists");
            let mut sched = RoundRobinScheduler::new();
            let stats = run_gathering(&config, &mut sched, 100_000).unwrap();
            assert!(stats.gathered, "n={n}");
        }
    }

    #[test]
    fn decision_is_insensitive_to_view_order() {
        let c = cfg(&[0, 0, 0, 1, 6]);
        for v in c.occupied_nodes() {
            let cw = Snapshot::capture(&c, v, MultiplicityCapability::Local, Direction::Cw);
            let ccw = Snapshot::capture(&c, v, MultiplicityCapability::Local, Direction::Ccw);
            match (
                GatheringProtocol.compute(&cw),
                GatheringProtocol.compute(&ccw),
            ) {
                (Decision::Idle, Decision::Idle) => {}
                (Decision::Move(a), Decision::Move(b)) => {
                    if cw.views[0] != cw.views[1] {
                        assert_eq!(a.index(), 1 - b.index());
                    }
                }
                other => panic!("inconsistent {other:?}"),
            }
        }
    }

    #[test]
    fn leap_certificate_matches_fresh_decisions_in_endgame() {
        // Walker at node 6, multiplicity of 4 at node 0 on a 10-ring: the
        // shorter arc is clockwise (gap 3, via 7-8-9).  The certificate must
        // reproduce the fresh decision of every robot for its whole horizon,
        // and the horizon must end exactly at the merge.
        let ring = Ring::new(10);
        let mut c = Configuration::from_counts(ring, vec![4, 0, 0, 0, 0, 0, 1, 0, 0, 0]).unwrap();
        let mut plan = LeapPlan::default();
        assert!(GatheringProtocol.leap_plan(
            &c,
            Direction::Cw,
            MultiplicityCapability::Local,
            &mut plan
        ));
        assert_eq!(plan.velocities, vec![(6, 1)]);
        assert_eq!(plan.horizon, 4); // gap 3 + the merge round
        let mut walker = 6usize;
        for _ in 0..plan.horizon {
            // Fresh decisions agree with the plan at every leaped round.
            let s = Snapshot::capture(&c, walker, MultiplicityCapability::Local, Direction::Cw);
            assert_eq!(
                GatheringProtocol.compute(&s),
                Decision::Move(ViewIndex::First)
            );
            let m = Snapshot::capture(&c, 0, MultiplicityCapability::Local, Direction::Cw);
            assert_eq!(GatheringProtocol.compute(&m), Decision::Idle);
            let next = (walker + 1) % 10;
            c.move_robot(walker, next).unwrap();
            walker = next;
        }
        assert!(c.is_gathered());
    }

    #[test]
    fn leap_certificate_scope_and_tie_breaking() {
        let ring = Ring::new(8);
        let mut plan = LeapPlan::default();
        // Gathered: idle forever.
        let done = Configuration::from_counts(ring, vec![0, 5, 0, 0, 0, 0, 0, 0]).unwrap();
        assert!(GatheringProtocol.leap_plan(
            &done,
            Direction::Cw,
            MultiplicityCapability::Local,
            &mut plan
        ));
        assert!(plan.velocities.is_empty());
        assert_eq!(plan.horizon, u64::MAX);
        // Equidistant arcs: the first-view direction wins, as in `decide`.
        let tie = Configuration::from_counts(ring, vec![3, 0, 0, 0, 1, 0, 0, 0]).unwrap();
        assert!(GatheringProtocol.leap_plan(
            &tie,
            Direction::Cw,
            MultiplicityCapability::Local,
            &mut plan
        ));
        assert_eq!(plan.velocities, vec![(4, 1)]);
        assert!(GatheringProtocol.leap_plan(
            &tie,
            Direction::Ccw,
            MultiplicityCapability::Local,
            &mut plan
        ));
        assert_eq!(plan.velocities, vec![(4, -1)]);
        // No multiplicity detection: the endgame reasoning does not apply.
        assert!(!GatheringProtocol.leap_plan(
            &tie,
            Direction::Cw,
            MultiplicityCapability::None,
            &mut plan
        ));
        // Two single robots (mutual chase) and three occupied nodes
        // (contraction) are both declined.
        let chase = Configuration::from_counts(ring, vec![1, 0, 0, 1, 0, 0, 0, 0]).unwrap();
        assert!(!GatheringProtocol.leap_plan(
            &chase,
            Direction::Cw,
            MultiplicityCapability::Local,
            &mut plan
        ));
        let three = Configuration::from_counts(ring, vec![1, 1, 0, 3, 0, 0, 0, 0]).unwrap();
        assert!(!GatheringProtocol.leap_plan(
            &three,
            Direction::Cw,
            MultiplicityCapability::Local,
            &mut plan
        ));
    }

    #[test]
    fn capability_and_exclusivity_declarations() {
        assert_eq!(
            GatheringProtocol.capability(),
            MultiplicityCapability::Local
        );
        assert!(!GatheringProtocol.requires_exclusivity());
        assert_eq!(GatheringProtocol.name(), "gathering");
    }
}
