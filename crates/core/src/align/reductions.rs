//! The four reduction rules of Algorithm Align (Section 3.1 of the paper),
//! expressed as transformations of the supermin configuration view.
//!
//! Everything here manipulates *words* (views); the mapping from a chosen
//! reduction to the physical robot that must move is done by comparing the
//! robot's own views against the *expected mover view* returned by
//! [`choose_reduction`], see [`crate::align`].

use rr_ring::pattern;
use rr_ring::View;
use serde::{Deserialize, Serialize};

/// One of the four reduction rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Reduction {
    /// `reduction_0`: the robot between intervals `q_{k-1}` and `q_0` moves
    /// into `q_0 > 0`.
    Zero,
    /// `reduction_1`: the robot between `q_{ℓ1}` and `q_{ℓ1+1}` moves into
    /// `q_{ℓ1}`.
    One,
    /// `reduction_2`: the robot between `q_{ℓ2}` and `q_{ℓ2+1}` moves into
    /// `q_{ℓ2}`.
    Two,
    /// `reduction_{-1}`: the robot between `q_{k-2}` and `q_{k-1}` moves into
    /// `q_{k-1}`.
    MinusOne,
}

/// A reduction selected for a given supermin view, together with the data the
/// protocol needs to carry it out locally.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectedReduction {
    /// Which rule applies.
    pub rule: Reduction,
    /// The view that the designated mover reads **in its direction of
    /// movement**.  In a rigid configuration exactly one (robot, direction)
    /// pair reads this view; in the symmetric special case `(0,0,2,2)` the
    /// unique axis robot reads it in both directions.
    pub mover_view: View,
    /// The gap word of the configuration after the move (read from the same
    /// starting interval as the input supermin view; not necessarily in
    /// canonical form).
    pub resulting_word: View,
}

/// Index of the first strictly positive interval of `w` (the paper's `ℓ1`).
#[must_use]
pub fn ell1(w: &View) -> Option<usize> {
    pattern::ell1(w.gaps())
}

/// Index of the second strictly positive interval of `w` (the paper's `ℓ2`).
#[must_use]
pub fn ell2(w: &View) -> Option<usize> {
    pattern::ell2(w.gaps())
}

/// Applies a reduction rule to a supermin view, returning the resulting gap
/// word (not re-canonicalized).
///
/// # Panics
///
/// Panics if the rule is not applicable (e.g. `Zero` with `q_0 = 0`).
#[must_use]
pub fn apply(w: &View, rule: Reduction) -> View {
    let mut gaps = w.gaps().to_vec();
    let k = gaps.len();
    match rule {
        Reduction::Zero => {
            assert!(gaps[0] > 0, "reduction_0 requires q_0 > 0");
            gaps[0] -= 1;
            gaps[k - 1] += 1;
        }
        Reduction::One => {
            let l1 = ell1(w).expect("reduction_1 requires a positive interval");
            assert!(l1 + 1 < k, "reduction_1 requires ℓ1 < k - 1");
            gaps[l1] -= 1;
            gaps[l1 + 1] += 1;
        }
        Reduction::Two => {
            let l2 = ell2(w).expect("reduction_2 requires two positive intervals");
            assert!(l2 + 1 < k, "reduction_2 requires ℓ2 < k - 1");
            gaps[l2] -= 1;
            gaps[l2 + 1] += 1;
        }
        Reduction::MinusOne => {
            assert!(
                gaps[k - 1] > 0,
                "reduction_minus_one requires the last interval to be positive"
            );
            assert!(
                k >= 2,
                "reduction_minus_one requires at least two intervals"
            );
            gaps[k - 2] += 1;
            gaps[k - 1] -= 1;
        }
    }
    View::new(gaps)
}

/// The view read by the designated mover of `rule`, in its direction of
/// movement, when the supermin configuration view is `w`.
///
/// * `reduction_0`: the mover is the robot `a` between `q_{k-1}` and `q_0`
///   moving into `q_0`; reading onward it sees exactly `w`.
/// * `reduction_1` / `reduction_2`: the mover is the robot between
///   `q_{ℓ}` and `q_{ℓ+1}` moving into `q_ℓ` (against the reading direction of
///   `w`); reading in its movement direction it sees
///   `(q_ℓ, q_{ℓ-1}, …, q_0, q_{k-1}, …, q_{ℓ+1})`.
/// * `reduction_{-1}`: the mover is the robot `d` between `q_{k-2}` and
///   `q_{k-1}` moving into `q_{k-1}`; it reads `(q_{k-1}, q_0, …, q_{k-2})`.
#[must_use]
pub fn mover_view(w: &View, rule: Reduction) -> View {
    let gaps = w.gaps();
    let k = gaps.len();
    match rule {
        Reduction::Zero => w.clone(),
        Reduction::One | Reduction::Two => {
            let l = if rule == Reduction::One {
                ell1(w).expect("ℓ1 exists")
            } else {
                ell2(w).expect("ℓ2 exists")
            };
            let mut out = Vec::with_capacity(k);
            // q_ℓ, q_{ℓ-1}, ..., q_0
            for i in (0..=l).rev() {
                out.push(gaps[i]);
            }
            // q_{k-1}, q_{k-2}, ..., q_{ℓ+1}
            for i in ((l + 1)..k).rev() {
                out.push(gaps[i]);
            }
            View::new(out)
        }
        Reduction::MinusOne => {
            let mut out = Vec::with_capacity(k);
            out.push(gaps[k - 1]);
            out.extend_from_slice(&gaps[..k - 1]);
            View::new(out)
        }
    }
}

/// Chooses the reduction Algorithm Align applies to a configuration with
/// supermin view `w_min`, following Figure 1 of the paper:
///
/// 1. if `q_0 > 0`, apply `reduction_0`;
/// 2. otherwise apply `reduction_1` unless the result is symmetric;
/// 3. otherwise apply `reduction_2` unless the result is symmetric;
/// 4. otherwise apply `reduction_{-1}` unless the result is symmetric;
/// 5. otherwise (the configuration is `Cs` or its symmetric successor) apply
///    `reduction_1` regardless.
///
/// Returns `None` when no reduction applies (fewer than 3 robots, or the
/// configuration is already `C*`).
#[must_use]
pub fn choose_reduction(w_min: &View) -> Option<SelectedReduction> {
    let k = w_min.len();
    if k < 3 {
        return None;
    }
    if pattern::is_c_star_type(w_min.gaps()) && w_min.gap(k - 1) >= 2 {
        // Already C* (or a C*-type word): Align's goal is reached.
        return None;
    }
    let build = |rule: Reduction| SelectedReduction {
        rule,
        mover_view: mover_view(w_min, rule),
        resulting_word: apply(w_min, rule),
    };
    if w_min.gap(0) > 0 {
        return Some(build(Reduction::Zero));
    }
    // q_0 = 0: ℓ1 exists unless every interval is 0 (k = n, no empty node),
    // in which case no robot can move at all.  ℓ1 = k-1 would mean all robots
    // form one block, a symmetric configuration outside Align's domain.
    let l1 = ell1(w_min)?;
    if l1 + 1 >= k {
        return None;
    }
    let r1 = build(Reduction::One);
    if !r1.resulting_word.is_symmetric() {
        return Some(r1);
    }
    if ell2(w_min).is_some_and(|l2| l2 + 1 < k) {
        let r2 = build(Reduction::Two);
        if !r2.resulting_word.is_symmetric() {
            return Some(r2);
        }
    }
    if w_min.gap(k - 1) > 0 {
        let rm1 = build(Reduction::MinusOne);
        if !rm1.resulting_word.is_symmetric() {
            return Some(rm1);
        }
    }
    // Cs (0,1,1,2) or the symmetric intermediate (0,0,2,2): reduction_1.
    Some(build(Reduction::One))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(gaps: &[usize]) -> View {
        View::new(gaps.to_vec())
    }

    #[test]
    fn ell_indices_delegate_to_pattern() {
        assert_eq!(ell1(&v(&[0, 0, 2, 1])), Some(2));
        assert_eq!(ell2(&v(&[0, 0, 2, 1])), Some(3));
        assert_eq!(ell1(&v(&[0, 0, 0])), None);
    }

    #[test]
    fn apply_reduction_zero() {
        assert_eq!(apply(&v(&[2, 1, 3]), Reduction::Zero), v(&[1, 1, 4]));
    }

    #[test]
    fn apply_reduction_one_and_two() {
        assert_eq!(apply(&v(&[0, 2, 1, 3]), Reduction::One), v(&[0, 1, 2, 3]));
        assert_eq!(apply(&v(&[0, 2, 1, 3]), Reduction::Two), v(&[0, 2, 0, 4]));
    }

    #[test]
    fn apply_reduction_minus_one() {
        assert_eq!(
            apply(&v(&[0, 1, 1, 2]), Reduction::MinusOne),
            v(&[0, 1, 2, 1])
        );
    }

    #[test]
    #[should_panic(expected = "requires q_0 > 0")]
    fn apply_zero_requires_positive_first_gap() {
        let _ = apply(&v(&[0, 1, 2]), Reduction::Zero);
    }

    #[test]
    fn mover_views_read_in_movement_direction() {
        // reduction_0: the mover reads the supermin itself.
        assert_eq!(mover_view(&v(&[2, 1, 3]), Reduction::Zero), v(&[2, 1, 3]));
        // reduction_1 on (0,0,2,1,4): ℓ1 = 2, mover reads (2,0,0,4,1).
        assert_eq!(
            mover_view(&v(&[0, 0, 2, 1, 4]), Reduction::One),
            v(&[2, 0, 0, 4, 1])
        );
        // reduction_2 on the same word: ℓ2 = 3, mover reads (1,2,0,0,4).
        assert_eq!(
            mover_view(&v(&[0, 0, 2, 1, 4]), Reduction::Two),
            v(&[1, 2, 0, 0, 4])
        );
        // reduction_{-1}: mover reads (q_{k-1}, q_0, ..., q_{k-2}).
        assert_eq!(
            mover_view(&v(&[0, 1, 1, 2]), Reduction::MinusOne),
            v(&[2, 0, 1, 1])
        );
    }

    #[test]
    fn choose_prefers_zero_when_supermin_positive() {
        let sel = choose_reduction(&v(&[1, 2, 3])).unwrap();
        assert_eq!(sel.rule, Reduction::Zero);
        assert_eq!(sel.resulting_word, v(&[0, 2, 4]));
    }

    #[test]
    fn choose_prefers_one_when_no_symmetry_is_created() {
        // (0, 2, 1, 4): reduction_1 yields (0,1,2,4) which is rigid.
        let sel = choose_reduction(&v(&[0, 2, 1, 4])).unwrap();
        assert_eq!(sel.rule, Reduction::One);
        assert_eq!(sel.resulting_word, v(&[0, 1, 2, 4]));
    }

    #[test]
    fn choose_falls_back_to_two_on_symmetry() {
        // (0, 1, 1, 3): reduction_1 gives (0,0,2,3)?  Check: ℓ1 = 1, result
        // (0, 0, 2, 3) — rigid, so reduction_1 is chosen.  Pick instead a word
        // where conditions 1–4 of Lemma 3 hold: (0, 1, 2, 3): reduction_1
        // gives (0, 0, 3, 3), which is symmetric → reduction_2 gives
        // (0, 1, 1, 4), rigid.
        let sel = choose_reduction(&v(&[0, 1, 2, 3])).unwrap();
        assert_eq!(sel.rule, Reduction::Two);
        assert_eq!(sel.resulting_word, v(&[0, 1, 1, 4]));
    }

    #[test]
    fn choose_falls_back_to_minus_one() {
        // Condition 5 of Lemma 4: (0,1,1,1,2) — both reduction_1 and
        // reduction_2 create symmetric configurations, reduction_{-1} does not.
        let sel = choose_reduction(&v(&[0, 1, 1, 1, 2])).unwrap();
        assert_eq!(sel.rule, Reduction::MinusOne);
        assert_eq!(sel.resulting_word, v(&[0, 1, 1, 2, 1]));
        assert!(!sel.resulting_word.is_symmetric());
    }

    #[test]
    fn choose_handles_cs_special_case() {
        // Cs = (0,1,1,2): every reduction creates a symmetric configuration;
        // the algorithm still performs reduction_1.
        let sel = choose_reduction(&v(&[0, 1, 1, 2])).unwrap();
        assert_eq!(sel.rule, Reduction::One);
        assert_eq!(sel.resulting_word, v(&[0, 0, 2, 2]));
        assert!(sel.resulting_word.is_symmetric());
        // ... and from (0,0,2,2) reduction_1 reaches C* = (0,0,1,3).
        let sel = choose_reduction(&v(&[0, 0, 2, 2])).unwrap();
        assert_eq!(sel.rule, Reduction::One);
        assert_eq!(sel.resulting_word, v(&[0, 0, 1, 3]));
    }

    #[test]
    fn choose_stops_at_c_star() {
        assert!(choose_reduction(&v(&[0, 0, 1, 3])).is_none());
        assert!(choose_reduction(&v(&[0, 0, 0, 1, 6])).is_none());
    }

    #[test]
    fn choose_rejects_degenerate_inputs() {
        assert!(choose_reduction(&v(&[3, 4])).is_none());
        assert!(choose_reduction(&v(&[0, 0, 0, 0])).is_none());
    }

    #[test]
    fn reductions_never_touch_total_gap() {
        for gaps in [
            vec![0, 2, 1, 4],
            vec![1, 2, 3],
            vec![0, 1, 1, 2],
            vec![0, 1, 2, 3],
        ] {
            let w = v(&gaps);
            if let Some(sel) = choose_reduction(&w) {
                assert_eq!(sel.resulting_word.total_gap(), w.total_gap());
                assert_eq!(sel.mover_view.total_gap(), w.total_gap());
            }
        }
    }
}
