//! Algorithm **Align** (Section 3 of the paper): starting from any rigid
//! exclusive configuration of `k ≥ 3` robots on an `n`-node ring with
//! `k < n - 2`, reach the configuration `C* = (0^{k-2}, 1, n-k-1)`.
//!
//! The algorithm repeatedly decreases the supermin configuration view by
//! moving a single, unambiguously identified robot (Theorem 1).  The decision
//! is made entirely from the robot's local view:
//!
//! 1. reconstruct the supermin configuration view `W_min` (any view determines
//!    it);
//! 2. select the reduction rule exactly as Figure 1 of the paper does
//!    ([`reductions::choose_reduction`]);
//! 3. the robot moves iff one of its two directional views equals the
//!    *expected mover view* of the selected rule, and it moves in the
//!    direction of that view.
//!
//! Rigidity guarantees that exactly one robot (in exactly one direction)
//! matches; the only non-rigid configuration ever encountered is the
//! symmetric intermediate with supermin `(0,0,2,2)` produced from `Cs`, where
//! the unique axis robot matches in both directions and either move leads to
//! `C*`.

pub mod reductions;

use rr_corda::{
    Decision, MultiplicityCapability, Protocol, Scheduler, SimError, Snapshot, ViewIndex,
};
use rr_ring::{pattern, Configuration, View};

use crate::driver::drive;

pub use reductions::{choose_reduction, Reduction, SelectedReduction};

/// The Align protocol.
#[derive(Debug, Default, Clone, Copy)]
pub struct AlignProtocol;

impl AlignProtocol {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        AlignProtocol
    }

    /// Whether `supermin` is the target configuration `C*` (for the number of
    /// robots implied by the view length).
    #[must_use]
    pub fn is_goal(supermin: &View) -> bool {
        pattern::is_c_star_type(supermin.gaps())
    }

    /// The decision of Algorithm Align for a robot whose two directional views
    /// are `views` — exposed so that other protocols (Ring Clearing,
    /// Gathering) can delegate their first phase to Align.
    #[must_use]
    pub fn decide(views: &[View; 2]) -> Decision {
        let k = views[0].len();
        if k < 3 {
            return Decision::Idle;
        }
        let w_min = views[0].supermin();
        let Some(sel) = reductions::choose_reduction(&w_min) else {
            return Decision::Idle;
        };
        if views[0] == sel.mover_view {
            Decision::Move(ViewIndex::First)
        } else if views[1] == sel.mover_view {
            Decision::Move(ViewIndex::Second)
        } else {
            Decision::Idle
        }
    }
}

impl Protocol for AlignProtocol {
    fn name(&self) -> &str {
        "align"
    }

    fn capability(&self) -> MultiplicityCapability {
        MultiplicityCapability::None
    }

    fn requires_exclusivity(&self) -> bool {
        true
    }

    fn compute(&self, snapshot: &Snapshot) -> Decision {
        AlignProtocol::decide(&snapshot.views)
    }
}

/// Runs Align from `initial` under the given scheduler until `C*` is reached,
/// returning the final configuration and the number of moves performed.
///
/// This is a convenience harness used by the examples, the benches and the
/// verification suite; `max_scheduler_steps` bounds the run.
///
/// Thin wrapper over the generic engine loop
/// [`drive`](crate::driver::drive()).
pub fn run_to_c_star<S: Scheduler + ?Sized>(
    initial: &Configuration,
    scheduler: &mut S,
    max_scheduler_steps: u64,
) -> Result<(Configuration, u64), SimError> {
    let (engine, report) = drive(
        AlignProtocol,
        initial,
        scheduler,
        &mut (),
        max_scheduler_steps,
        |e, ()| AlignProtocol::is_goal(&rr_ring::supermin_view(e.configuration())),
    )?;
    Ok((engine.configuration().clone(), report.moves))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_corda::scheduler::{
        AsynchronousScheduler, FullySynchronousScheduler, RoundRobinScheduler,
        SemiSynchronousScheduler,
    };
    use rr_corda::Engine;
    use rr_ring::enumerate::enumerate_rigid_configurations;
    use rr_ring::{supermin_view, symmetry, Direction};

    fn cfg(gaps: &[usize]) -> Configuration {
        Configuration::from_gaps_at_origin(gaps)
    }

    fn c_star_view(n: usize, k: usize) -> View {
        let mut gaps = vec![0; k - 2];
        gaps.push(1);
        gaps.push(n - k - 1);
        View::new(gaps)
    }

    #[test]
    fn goal_detection() {
        assert!(AlignProtocol::is_goal(&View::new(vec![0, 0, 1, 3])));
        assert!(AlignProtocol::is_goal(&View::new(vec![0, 0, 0, 1, 6])));
        assert!(!AlignProtocol::is_goal(&View::new(vec![0, 1, 1, 2])));
    }

    #[test]
    fn exactly_one_robot_moves_in_a_rigid_configuration() {
        for (n, k) in [(8usize, 4usize), (10, 5), (11, 6), (12, 4), (13, 7)] {
            for config in enumerate_rigid_configurations(n, k) {
                let w_min = supermin_view(&config);
                if AlignProtocol::is_goal(&w_min) {
                    continue;
                }
                let mut movers = 0;
                for v in config.occupied_nodes() {
                    let s =
                        Snapshot::capture(&config, v, MultiplicityCapability::None, Direction::Cw);
                    if AlignProtocol.compute(&s).is_move() {
                        movers += 1;
                    }
                }
                assert_eq!(movers, 1, "n={n} k={k} config={config}");
            }
        }
    }

    #[test]
    fn decision_is_insensitive_to_view_order() {
        for config in enumerate_rigid_configurations(11, 5) {
            for v in config.occupied_nodes() {
                let cw = Snapshot::capture(&config, v, MultiplicityCapability::None, Direction::Cw);
                let ccw =
                    Snapshot::capture(&config, v, MultiplicityCapability::None, Direction::Ccw);
                match (AlignProtocol.compute(&cw), AlignProtocol.compute(&ccw)) {
                    (Decision::Idle, Decision::Idle) => {}
                    (Decision::Move(a), Decision::Move(b)) => {
                        if cw.views[0] != cw.views[1] {
                            assert_eq!(a.index(), 1 - b.index(), "config={config} node={v}");
                        }
                    }
                    other => panic!("inconsistent decisions {other:?} for {config} node {v}"),
                }
            }
        }
    }

    #[test]
    fn cs_reaches_c_star_via_the_symmetric_intermediate() {
        // Cs = (0,1,1,2) on n = 8, k = 4 (Theorem 1's special case).
        let initial = cfg(&[0, 1, 1, 2]);
        let mut sched = RoundRobinScheduler::new();
        let (final_config, moves) = run_to_c_star(&initial, &mut sched, 10_000).unwrap();
        assert_eq!(supermin_view(&final_config), c_star_view(8, 4));
        assert_eq!(moves, 2, "Cs needs exactly two reduction_1 moves");
    }

    #[test]
    fn every_rigid_configuration_aligns_to_c_star_round_robin() {
        for (n, k) in [(8usize, 4usize), (9, 4), (10, 5), (11, 7), (12, 6), (13, 5)] {
            for config in enumerate_rigid_configurations(n, k) {
                let mut sched = RoundRobinScheduler::new();
                let (final_config, _) = run_to_c_star(&config, &mut sched, 200_000)
                    .unwrap_or_else(|e| panic!("n={n} k={k} {config}: {e}"));
                assert_eq!(
                    supermin_view(&final_config),
                    c_star_view(n, k),
                    "n={n} k={k} started from {config}"
                );
            }
        }
    }

    #[test]
    fn alignment_works_under_every_scheduler() {
        let initial = cfg(&[0, 2, 1, 0, 3, 4]); // rigid, n = 16, k = 6
        assert!(symmetry::is_rigid(&initial));
        let goal = c_star_view(16, 6);

        let mut fsync = FullySynchronousScheduler;
        let (c, _) = run_to_c_star(&initial, &mut fsync, 100_000).unwrap();
        assert_eq!(supermin_view(&c), goal);

        let mut ssync = SemiSynchronousScheduler::seeded(42);
        let (c, _) = run_to_c_star(&initial, &mut ssync, 100_000).unwrap();
        assert_eq!(supermin_view(&c), goal);

        let mut asynch = AsynchronousScheduler::seeded(7);
        let (c, _) = run_to_c_star(&initial, &mut asynch, 400_000).unwrap();
        assert_eq!(supermin_view(&c), goal);
    }

    #[test]
    fn intermediate_configurations_stay_rigid_or_are_the_known_exception() {
        for (n, k) in [(9usize, 4usize), (10, 5), (12, 6)] {
            for config in enumerate_rigid_configurations(n, k) {
                let mut sim = Engine::with_default_options(AlignProtocol, config.clone()).unwrap();
                let mut sched = RoundRobinScheduler::new();
                let mut guard = 0;
                while !AlignProtocol::is_goal(&supermin_view(sim.configuration())) {
                    let view = sim.scheduler_view();
                    let step = sched.next(&view);
                    sim.step(&step, &mut ()).unwrap();
                    let current = sim.configuration();
                    let w = supermin_view(current);
                    assert!(
                        symmetry::is_rigid(current) || w == View::new(vec![0, 0, 2, 2]),
                        "intermediate {current} from {config} is neither rigid nor the exception"
                    );
                    guard += 1;
                    assert!(guard < 100_000, "no progress from {config}");
                }
            }
        }
    }

    #[test]
    fn supermin_never_increases_for_two_consecutive_moves() {
        // Theorem 1: every move (or every two consecutive moves, in the
        // reduction_{-1} case) strictly decreases the supermin view.
        for config in enumerate_rigid_configurations(12, 5) {
            let mut sim = Engine::with_default_options(AlignProtocol, config.clone()).unwrap();
            let mut sched = RoundRobinScheduler::new();
            let mut superminima = vec![supermin_view(sim.configuration())];
            let mut guard = 0;
            while !AlignProtocol::is_goal(&supermin_view(sim.configuration())) {
                let step = sched.next(&sim.scheduler_view());
                let moved = sim.step(&step, &mut ()).unwrap().moved();
                if moved {
                    superminima.push(supermin_view(sim.configuration()));
                }
                guard += 1;
                assert!(guard < 100_000);
            }
            for w in superminima.windows(3) {
                assert!(
                    w[2] < w[0],
                    "supermin did not decrease within two moves: {} -> {} -> {} (start {config})",
                    w[0],
                    w[1],
                    w[2]
                );
            }
        }
    }

    #[test]
    fn align_is_idle_for_tiny_teams() {
        let c = cfg(&[3, 4]); // two robots
        for v in c.occupied_nodes() {
            let s = Snapshot::capture(&c, v, MultiplicityCapability::None, Direction::Cw);
            assert_eq!(AlignProtocol.compute(&s), Decision::Idle);
        }
    }

    #[test]
    fn align_is_idle_at_c_star() {
        let c = cfg(&[0, 0, 0, 1, 6]);
        for v in c.occupied_nodes() {
            let s = Snapshot::capture(&c, v, MultiplicityCapability::None, Direction::Cw);
            assert_eq!(AlignProtocol.compute(&s), Decision::Idle);
        }
    }

    #[test]
    fn move_counts_are_reasonable() {
        // The number of moves to align is at most a small multiple of n·k on
        // these instances (the supermin decreases lexicographically).
        for (n, k) in [(12usize, 5usize), (14, 6)] {
            for config in enumerate_rigid_configurations(n, k).into_iter().take(50) {
                let mut sched = RoundRobinScheduler::new();
                let (_, moves) = run_to_c_star(&config, &mut sched, 200_000).unwrap();
                assert!(
                    moves <= (n * n) as u64,
                    "n={n} k={k}: {moves} moves from {config}"
                );
            }
        }
    }
}
