//! Edge contamination state with the mixed graph-searching semantics of
//! Section 4.1 of the paper.

use rr_ring::{Configuration, EdgeId, NodeId, Ring};
use serde::{Deserialize, Serialize};

/// The contamination state of every edge of the ring, stored as a 64-bit set
/// (bit `e` set ⇔ edge `e` clear).
///
/// The bitset bounds the ring at 64 edges — far beyond any instance the
/// searching monitors or the exhaustive model checker meet — and makes the
/// state `Copy`-cheap: cloning it per explored edge and converting to/from
/// the model checker's 64-bit auxiliary-state key
/// ([`Contamination::clear_bits`] / [`Contamination::from_clear_bits`]) are
/// free.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contamination {
    ring: Ring,
    clear: u64,
}

impl Contamination {
    /// All edges contaminated (the initial state of the graph searching task).
    ///
    /// # Panics
    ///
    /// Panics if the ring has more than 64 edges (the bitset width).
    #[must_use]
    pub fn all_contaminated(ring: Ring) -> Self {
        assert!(ring.len() <= 64, "contamination bitset packs 64 edges");
        Contamination { ring, clear: 0 }
    }

    /// All edges contaminated, then immediately updated with the guards of the
    /// initial configuration (edges with both endpoints occupied are clear).
    #[must_use]
    pub fn initial(config: &Configuration) -> Self {
        let mut c = Contamination::all_contaminated(config.ring());
        c.observe_configuration(config);
        c
    }

    /// Rebuilds a contamination state from the 64-bit clear-edge set
    /// produced by [`Contamination::clear_bits`] — the exact inverse, used by
    /// the model checker to store only the bits next to each packed engine
    /// state and rehydrate the full state on expansion.
    ///
    /// # Panics
    ///
    /// Panics if the ring has more than 64 edges or `bits` sets an edge the
    /// ring does not have.
    #[must_use]
    pub fn from_clear_bits(ring: Ring, bits: u64) -> Self {
        assert!(ring.len() <= 64, "contamination bitset packs 64 edges");
        assert!(
            ring.len() == 64 || bits < 1u64 << ring.len(),
            "clear bits beyond the ring's edges"
        );
        Contamination { ring, clear: bits }
    }

    /// The clear-edge set as raw bits (bit `e` set ⇔ edge `e` clear); the
    /// hashable key the model checker stores per state.
    #[must_use]
    pub fn clear_bits(&self) -> u64 {
        self.clear
    }

    /// The ring this state refers to.
    #[must_use]
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// Whether edge `e` is currently clear.
    #[must_use]
    pub fn is_clear(&self, e: EdgeId) -> bool {
        self.clear >> e & 1 != 0
    }

    /// Number of currently clear edges.
    #[must_use]
    pub fn clear_count(&self) -> usize {
        self.clear.count_ones() as usize
    }

    /// Whether every edge of the ring is simultaneously clear.
    #[must_use]
    pub fn all_clear(&self) -> bool {
        self.clear == self.full_mask()
    }

    /// The currently contaminated edges.
    #[must_use]
    pub fn contaminated_edges(&self) -> Vec<EdgeId> {
        (0..self.ring.len())
            .filter(|&e| !self.is_clear(e))
            .collect()
    }

    /// Resets every edge to contaminated (used to check the *perpetual*
    /// property: restart the contamination at an arbitrary point of the run
    /// and verify that the strategy clears the ring again).
    pub fn reset(&mut self) {
        self.clear = 0;
    }

    /// Bitmask with one set bit per edge of the ring.
    fn full_mask(&self) -> u64 {
        if self.ring.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.ring.len()) - 1
        }
    }
}

/// The occupancy bitmask of a configuration (bit `v` set ⇔ node `v`
/// occupied); the form the bit-parallel contamination operators consume.
///
/// # Panics
///
/// Panics if the ring has more than 64 nodes.
#[must_use]
pub fn occupied_mask(config: &Configuration) -> u64 {
    let n = config.n();
    assert!(n <= 64, "occupancy bitmask packs 64 nodes");
    (0..n).fold(0u64, |m, v| m | u64::from(config.is_occupied(v)) << v)
}

impl Contamination {
    /// Marks clear the edges whose two endpoints are both occupied, then
    /// applies the recontamination closure.  Call this on the initial
    /// configuration and after any externally applied change.
    pub fn observe_configuration(&mut self, config: &Configuration) {
        debug_assert_eq!(config.ring(), self.ring);
        for e in 0..self.ring.len() {
            let (u, v) = self.ring.edge_endpoints(e);
            if config.is_occupied(u) && config.is_occupied(v) {
                self.clear |= 1 << e;
            }
        }
        self.recontaminate(config);
    }

    /// Observes a robot move from `from` to `to` resulting in configuration
    /// `after`: the traversed edge is cleared, guarded edges are cleared, and
    /// the recontamination closure is applied.
    ///
    /// The guard scan is deliberately the full
    /// [`Contamination::observe_configuration`], not an update local to
    /// `to`: within one SSYNC round every move record is observed against
    /// the *final* post-round configuration, so the edges newly guarded by
    /// `after` can sit anywhere on the ring (next to the other movers of
    /// the round), not just at this move's target.
    pub fn observe_move(&mut self, from: NodeId, to: NodeId, after: &Configuration) {
        debug_assert_eq!(after.ring(), self.ring);
        let traversed = self.ring.edge_between(from, to);
        self.clear |= 1 << traversed;
        self.observe_configuration(after);
    }

    /// Whether this state is a fixpoint of the recontamination rule — i.e.
    /// [`Contamination::recontaminate`] would change nothing: no clear edge
    /// shares an unoccupied endpoint with a contaminated edge.  Equivalent
    /// to cloning and recontaminating, without the clone.  The model
    /// checker's safety sweep asks this on every explored edge.
    #[must_use]
    pub fn is_recontamination_closed(&self, config: &Configuration) -> bool {
        debug_assert_eq!(config.ring(), self.ring);
        self.is_recontamination_closed_mask(occupied_mask(config))
    }

    /// [`Contamination::is_recontamination_closed`] against a precomputed
    /// occupancy bitmask (bit `v` set ⇔ node `v` occupied) — O(1): edges
    /// `e-1` and `e` share node `e`, so the state is closed exactly when no
    /// unoccupied node sits between a clear and a contaminated edge:
    /// `(clear ⊕ rot1(clear)) ∧ ¬occupied = 0`.
    #[must_use]
    pub fn is_recontamination_closed_mask(&self, occupied: u64) -> bool {
        let n = self.ring.len();
        let mask = self.full_mask();
        // Bit e of `prev`: whether edge e-1 (cyclically) is clear.
        let prev = ((self.clear << 1) | (self.clear >> (n - 1))) & mask;
        (self.clear ^ prev) & !occupied & mask == 0
    }

    /// The recontamination closure: a clear edge that shares an unoccupied
    /// endpoint with a contaminated edge becomes contaminated, transitively,
    /// until a fixpoint is reached.
    ///
    /// Contamination propagates between two edges exactly when their common
    /// node is unoccupied, so the maximal runs of edges joined by unoccupied
    /// interior nodes (delimited by occupied nodes) are all-or-nothing — a
    /// run containing any contaminated edge is wholly contaminated, a run of
    /// clear edges guarded at both ends stays clear.  Computed bit-parallel
    /// over the whole edge set; the model checker runs this closure on every
    /// move of every explored edge, so the constants matter.
    pub fn recontaminate(&mut self, config: &Configuration) {
        debug_assert_eq!(config.ring(), self.ring);
        let n = self.ring.len();
        let mask = self.full_mask();
        let through = !occupied_mask(config) & mask; // spread-through nodes
                                                     // Bit-parallel spread to a fixpoint: edges e-1 and e share node e,
                                                     // so a contaminated edge e wipes e-1 when node e is unoccupied
                                                     // (`ror1`), and a contaminated e-1 wipes e when node e is unoccupied
                                                     // (`rol1 ∧ through`).  Runs shrink from both ends every round, so
                                                     // the loop converges in at most ⌈n/2⌉ iterations — in practice a
                                                     // handful — each O(1).
        loop {
            let cont = !self.clear & mask;
            let from_next = ((cont & through) >> 1) | ((cont & through & 1) << (n - 1));
            let from_prev = (((cont << 1) | (cont >> (n - 1))) & mask) & through;
            let spread = (from_next | from_prev) & self.clear;
            if spread == 0 {
                return;
            }
            self.clear &= !spread;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_ring::Direction;

    fn cfg(n: usize, occupied: &[usize]) -> Configuration {
        Configuration::new_exclusive(Ring::new(n), occupied).unwrap()
    }

    #[test]
    fn initial_state_clears_guarded_edges_only() {
        // Robots on 0,1,2: edges 0 (0-1) and 1 (1-2) are guarded and clear.
        let c = cfg(8, &[0, 1, 2]);
        let cont = Contamination::initial(&c);
        assert!(cont.is_clear(0));
        assert!(cont.is_clear(1));
        assert_eq!(cont.clear_count(), 2);
        assert!(!cont.all_clear());
        assert_eq!(cont.contaminated_edges(), vec![2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn isolated_robots_clear_nothing() {
        let c = cfg(9, &[0, 3, 6]);
        let cont = Contamination::initial(&c);
        assert_eq!(cont.clear_count(), 0);
    }

    #[test]
    fn traversal_clears_the_edge() {
        let mut c = cfg(8, &[0, 1, 4]);
        let mut cont = Contamination::initial(&c);
        assert!(cont.is_clear(0));
        // Robot at 4 walks to 5: edge 4 becomes clear (no recontamination:
        // edge 4's endpoints are 4 (now empty) and 5 (occupied); node 4 is
        // unoccupied and touches contaminated edge 3, so edge 4 is
        // immediately recontaminated!
        c.move_robot(4, 5).unwrap();
        cont.observe_move(4, 5, &c);
        assert!(
            !cont.is_clear(4),
            "cleared edge behind the robot is recontaminated"
        );
        assert!(cont.is_clear(0));
    }

    #[test]
    fn two_robot_sweep_clears_the_ring() {
        // The classical 2-robot strategy of Section 4.1: one robot stays at v,
        // the other walks all the way around the empty part.
        let n = 7;
        let mut c = cfg(n, &[0, 1]);
        let mut cont = Contamination::initial(&c);
        assert!(cont.is_clear(0));
        // Walk robot from 1 to 2, 3, ..., 6 (the neighbour of 0 on the other side).
        let mut pos = 1;
        while pos != n - 1 {
            let next = pos + 1;
            c.move_robot(pos, next).unwrap();
            cont.observe_move(pos, next, &c);
            pos = next;
        }
        assert!(
            cont.all_clear(),
            "sweep must clear every edge: {:?}",
            cont.contaminated_edges()
        );
    }

    #[test]
    fn recontamination_respects_guarding_robots() {
        // Robots at 0 and 4 guard both ends of the cleared arc 0–1–2–3–4:
        // the arc stays clear.
        let c = cfg(8, &[0, 4]);
        // Edges 0..4 clear: the arc 0–1–2–3–4.
        let mut cont = Contamination::from_clear_bits(c.ring(), 0b1111);
        cont.recontaminate(&c);
        assert_eq!(cont.clear_count(), 4);
        assert!(cont.is_clear(0) && cont.is_clear(3));
    }

    #[test]
    fn recontamination_spreads_through_unguarded_boundary() {
        // Same cleared arc, but the robot sits at 5 instead of 4: node 4 is
        // unoccupied, so contamination creeps back through it and wipes the
        // whole arc (node 0 is occupied but the creep comes from the other
        // side of every edge).
        let c = cfg(8, &[0, 5]);
        let mut cont = Contamination::from_clear_bits(c.ring(), 0b1111);
        cont.recontaminate(&c);
        assert_eq!(cont.clear_count(), 0);
    }

    #[test]
    fn guarded_edge_resists_recontamination() {
        let c = cfg(6, &[2, 3]);
        let mut cont = Contamination::all_contaminated(c.ring());
        cont.observe_configuration(&c);
        assert!(cont.is_clear(2));
        cont.recontaminate(&c);
        assert!(
            cont.is_clear(2),
            "an edge with both endpoints occupied cannot be recontaminated"
        );
    }

    #[test]
    fn reset_recontaminates_everything() {
        let c = cfg(6, &[2, 3]);
        let mut cont = Contamination::initial(&c);
        assert!(cont.clear_count() > 0);
        cont.reset();
        assert_eq!(cont.clear_count(), 0);
    }

    #[test]
    fn recontamination_is_idempotent() {
        let c = cfg(10, &[0, 1, 5, 6]);
        let mut cont = Contamination::initial(&c);
        let snapshot = cont.clone();
        cont.recontaminate(&c);
        assert_eq!(cont, snapshot);
    }

    #[test]
    fn full_clear_requires_blocking_both_sides() {
        // Three consecutive robots sweeping: move the trailing robot around.
        let n = 6;
        let mut c = cfg(n, &[0, 1, 2]);
        let mut cont = Contamination::initial(&c);
        // Move robot at 2 forward to 3, 4, 5: when it becomes adjacent to 0
        // (wrapping), the whole ring is clear.
        let mut pos = 2;
        for next in [3, 4, 5] {
            c.move_robot(pos, next).unwrap();
            cont.observe_move(pos, next, &c);
            pos = next;
        }
        assert!(cont.all_clear());
        // Moving it once more (onto 0) is illegal (occupied); instead move the
        // robot at 1 to 2: ring stays clear because no contaminated edge exists.
        c.move_robot(1, 2).unwrap();
        cont.observe_move(1, 2, &c);
        assert!(cont.all_clear());
    }

    #[test]
    fn closed_predicate_matches_clone_and_recontaminate() {
        // Over every clear-edge subset of a couple of occupancies, the
        // allocation-free predicate agrees with the definitional check.
        for occupied in [&[0usize, 3][..], &[0, 1, 4], &[2]] {
            let c = cfg(6, occupied);
            for bits in 0u64..(1 << 6) {
                let cont = Contamination::from_clear_bits(c.ring(), bits);
                let mut closed = cont.clone();
                closed.recontaminate(&c);
                assert_eq!(
                    cont.is_recontamination_closed(&c),
                    closed == cont,
                    "occupied={occupied:?} bits={bits:#b}"
                );
            }
        }
    }

    #[test]
    fn observe_move_clears_guards_created_by_other_movers_of_the_round() {
        // SSYNC round: robots at {1, 3, 6} on an 8-ring, with 6 → 5 and
        // 3 → 2 moving simultaneously; every move record is observed
        // against the FINAL configuration {1, 2, 5}.  While observing the
        // 6 → 5 record, the edge (1, 2) — guarded only because the *other*
        // mover arrived at 2 — must be cleared too: the guard scan is
        // global, not local to this move's target.
        let before = cfg(8, &[1, 3, 6]);
        let mut after = before.clone();
        after.move_robot(6, 5).unwrap();
        after.move_robot(3, 2).unwrap();
        let mut cont = Contamination::initial(&before);
        cont.observe_move(6, 5, &after);
        assert!(
            cont.is_clear(1),
            "edge (1,2), guarded by the other mover's arrival, must be clear"
        );
        // And the state equals the definitional clear-then-observe form.
        let mut reference = Contamination::initial(&before);
        reference = Contamination::from_clear_bits(
            reference.ring(),
            reference.clear_bits() | 1 << 5, // traversed edge (5,6)
        );
        reference.observe_configuration(&after);
        assert_eq!(cont, reference);
    }

    #[test]
    fn clear_bits_round_trips_exactly() {
        // Every mid-run state converts to bits and back without loss.
        let n = 7;
        let mut c = cfg(n, &[0, 1]);
        let mut cont = Contamination::initial(&c);
        let mut pos = 1;
        while pos != n - 1 {
            let rebuilt = Contamination::from_clear_bits(cont.ring(), cont.clear_bits());
            assert_eq!(rebuilt, cont);
            let next = pos + 1;
            c.move_robot(pos, next).unwrap();
            cont.observe_move(pos, next, &c);
            pos = next;
        }
        assert!(cont.all_clear());
        assert_eq!(
            Contamination::from_clear_bits(cont.ring(), cont.clear_bits()),
            cont
        );
    }

    #[test]
    #[should_panic(expected = "beyond the ring's edges")]
    fn from_clear_bits_rejects_out_of_range_bits() {
        let _ = Contamination::from_clear_bits(Ring::new(6), 1 << 6);
    }

    #[test]
    fn observe_move_requires_adjacent_nodes() {
        // Sanity: the panic comes from Ring::edge_between.
        let c = cfg(6, &[0, 3]);
        let mut cont = Contamination::initial(&c);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cont.observe_move(0, 2, &c);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn direction_of_walk_does_not_matter() {
        let n = 9;
        for dir in Direction::BOTH {
            let mut c = cfg(n, &[0, 1]);
            let mut cont = Contamination::initial(&c);
            // Walk the robot that has an empty neighbour in direction `dir`.
            let walker = if dir == Direction::Cw { 1 } else { 0 };
            let mut pos = walker;
            for _ in 0..(n - 2) {
                let next = c.ring().neighbor(pos, dir);
                c.move_robot(pos, next).unwrap();
                cont.observe_move(pos, next, &c);
                pos = next;
            }
            assert!(cont.all_clear(), "direction {dir}");
        }
    }
}
