//! Edge contamination state with the mixed graph-searching semantics of
//! Section 4.1 of the paper.

use rr_ring::{Configuration, EdgeId, NodeId, Ring};
use serde::{Deserialize, Serialize};

/// The contamination state of every edge of the ring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contamination {
    ring: Ring,
    clear: Vec<bool>,
}

impl Contamination {
    /// All edges contaminated (the initial state of the graph searching task).
    #[must_use]
    pub fn all_contaminated(ring: Ring) -> Self {
        Contamination {
            ring,
            clear: vec![false; ring.len()],
        }
    }

    /// All edges contaminated, then immediately updated with the guards of the
    /// initial configuration (edges with both endpoints occupied are clear).
    #[must_use]
    pub fn initial(config: &Configuration) -> Self {
        let mut c = Contamination::all_contaminated(config.ring());
        c.observe_configuration(config);
        c
    }

    /// The ring this state refers to.
    #[must_use]
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// Whether edge `e` is currently clear.
    #[must_use]
    pub fn is_clear(&self, e: EdgeId) -> bool {
        self.clear[e]
    }

    /// Number of currently clear edges.
    #[must_use]
    pub fn clear_count(&self) -> usize {
        self.clear.iter().filter(|&&c| c).count()
    }

    /// Whether every edge of the ring is simultaneously clear.
    #[must_use]
    pub fn all_clear(&self) -> bool {
        self.clear.iter().all(|&c| c)
    }

    /// The currently contaminated edges.
    #[must_use]
    pub fn contaminated_edges(&self) -> Vec<EdgeId> {
        (0..self.ring.len()).filter(|&e| !self.clear[e]).collect()
    }

    /// Resets every edge to contaminated (used to check the *perpetual*
    /// property: restart the contamination at an arbitrary point of the run
    /// and verify that the strategy clears the ring again).
    pub fn reset(&mut self) {
        self.clear.iter_mut().for_each(|c| *c = false);
    }

    /// Marks clear the edges whose two endpoints are both occupied, then
    /// applies the recontamination closure.  Call this on the initial
    /// configuration and after any externally applied change.
    pub fn observe_configuration(&mut self, config: &Configuration) {
        debug_assert_eq!(config.ring(), self.ring);
        for e in 0..self.ring.len() {
            let (u, v) = self.ring.edge_endpoints(e);
            if config.is_occupied(u) && config.is_occupied(v) {
                self.clear[e] = true;
            }
        }
        self.recontaminate(config);
    }

    /// Observes a robot move from `from` to `to` resulting in configuration
    /// `after`: the traversed edge is cleared, guarded edges are cleared, and
    /// the recontamination closure is applied.
    pub fn observe_move(&mut self, from: NodeId, to: NodeId, after: &Configuration) {
        debug_assert_eq!(after.ring(), self.ring);
        let traversed = self.ring.edge_between(from, to);
        self.clear[traversed] = true;
        self.observe_configuration(after);
    }

    /// The recontamination closure: repeatedly, a clear edge that shares an
    /// unoccupied endpoint with a contaminated edge becomes contaminated,
    /// until a fixpoint is reached.
    pub fn recontaminate(&mut self, config: &Configuration) {
        debug_assert_eq!(config.ring(), self.ring);
        let n = self.ring.len();
        let mut changed = true;
        while changed {
            changed = false;
            for e in 0..n {
                if self.clear[e] {
                    continue;
                }
                // Edge e is contaminated: spread through its unoccupied endpoints.
                let (u, v) = self.ring.edge_endpoints(e);
                for w in [u, v] {
                    if config.is_occupied(w) {
                        continue;
                    }
                    for other in self.ring.incident_edges(w) {
                        if other != e && self.clear[other] {
                            self.clear[other] = false;
                            changed = true;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_ring::Direction;

    fn cfg(n: usize, occupied: &[usize]) -> Configuration {
        Configuration::new_exclusive(Ring::new(n), occupied).unwrap()
    }

    #[test]
    fn initial_state_clears_guarded_edges_only() {
        // Robots on 0,1,2: edges 0 (0-1) and 1 (1-2) are guarded and clear.
        let c = cfg(8, &[0, 1, 2]);
        let cont = Contamination::initial(&c);
        assert!(cont.is_clear(0));
        assert!(cont.is_clear(1));
        assert_eq!(cont.clear_count(), 2);
        assert!(!cont.all_clear());
        assert_eq!(cont.contaminated_edges(), vec![2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn isolated_robots_clear_nothing() {
        let c = cfg(9, &[0, 3, 6]);
        let cont = Contamination::initial(&c);
        assert_eq!(cont.clear_count(), 0);
    }

    #[test]
    fn traversal_clears_the_edge() {
        let mut c = cfg(8, &[0, 1, 4]);
        let mut cont = Contamination::initial(&c);
        assert!(cont.is_clear(0));
        // Robot at 4 walks to 5: edge 4 becomes clear (no recontamination:
        // edge 4's endpoints are 4 (now empty) and 5 (occupied); node 4 is
        // unoccupied and touches contaminated edge 3, so edge 4 is
        // immediately recontaminated!
        c.move_robot(4, 5).unwrap();
        cont.observe_move(4, 5, &c);
        assert!(
            !cont.is_clear(4),
            "cleared edge behind the robot is recontaminated"
        );
        assert!(cont.is_clear(0));
    }

    #[test]
    fn two_robot_sweep_clears_the_ring() {
        // The classical 2-robot strategy of Section 4.1: one robot stays at v,
        // the other walks all the way around the empty part.
        let n = 7;
        let mut c = cfg(n, &[0, 1]);
        let mut cont = Contamination::initial(&c);
        assert!(cont.is_clear(0));
        // Walk robot from 1 to 2, 3, ..., 6 (the neighbour of 0 on the other side).
        let mut pos = 1;
        while pos != n - 1 {
            let next = pos + 1;
            c.move_robot(pos, next).unwrap();
            cont.observe_move(pos, next, &c);
            pos = next;
        }
        assert!(
            cont.all_clear(),
            "sweep must clear every edge: {:?}",
            cont.contaminated_edges()
        );
    }

    #[test]
    fn recontamination_respects_guarding_robots() {
        // Robots at 0 and 4 guard both ends of the cleared arc 0–1–2–3–4:
        // the arc stays clear.
        let c = cfg(8, &[0, 4]);
        let mut cont = Contamination::all_contaminated(c.ring());
        for e in 0..4 {
            cont.clear[e] = true;
        }
        cont.recontaminate(&c);
        assert_eq!(cont.clear_count(), 4);
        assert!(cont.is_clear(0) && cont.is_clear(3));
    }

    #[test]
    fn recontamination_spreads_through_unguarded_boundary() {
        // Same cleared arc, but the robot sits at 5 instead of 4: node 4 is
        // unoccupied, so contamination creeps back through it and wipes the
        // whole arc (node 0 is occupied but the creep comes from the other
        // side of every edge).
        let c = cfg(8, &[0, 5]);
        let mut cont = Contamination::all_contaminated(c.ring());
        for e in 0..4 {
            cont.clear[e] = true;
        }
        cont.recontaminate(&c);
        assert_eq!(cont.clear_count(), 0);
    }

    #[test]
    fn guarded_edge_resists_recontamination() {
        let c = cfg(6, &[2, 3]);
        let mut cont = Contamination::all_contaminated(c.ring());
        cont.observe_configuration(&c);
        assert!(cont.is_clear(2));
        cont.recontaminate(&c);
        assert!(
            cont.is_clear(2),
            "an edge with both endpoints occupied cannot be recontaminated"
        );
    }

    #[test]
    fn reset_recontaminates_everything() {
        let c = cfg(6, &[2, 3]);
        let mut cont = Contamination::initial(&c);
        assert!(cont.clear_count() > 0);
        cont.reset();
        assert_eq!(cont.clear_count(), 0);
    }

    #[test]
    fn recontamination_is_idempotent() {
        let c = cfg(10, &[0, 1, 5, 6]);
        let mut cont = Contamination::initial(&c);
        let snapshot = cont.clone();
        cont.recontaminate(&c);
        assert_eq!(cont, snapshot);
    }

    #[test]
    fn full_clear_requires_blocking_both_sides() {
        // Three consecutive robots sweeping: move the trailing robot around.
        let n = 6;
        let mut c = cfg(n, &[0, 1, 2]);
        let mut cont = Contamination::initial(&c);
        // Move robot at 2 forward to 3, 4, 5: when it becomes adjacent to 0
        // (wrapping), the whole ring is clear.
        let mut pos = 2;
        for next in [3, 4, 5] {
            c.move_robot(pos, next).unwrap();
            cont.observe_move(pos, next, &c);
            pos = next;
        }
        assert!(cont.all_clear());
        // Moving it once more (onto 0) is illegal (occupied); instead move the
        // robot at 1 to 2: ring stays clear because no contaminated edge exists.
        c.move_robot(1, 2).unwrap();
        cont.observe_move(1, 2, &c);
        assert!(cont.all_clear());
    }

    #[test]
    fn observe_move_requires_adjacent_nodes() {
        // Sanity: the panic comes from Ring::edge_between.
        let c = cfg(6, &[0, 3]);
        let mut cont = Contamination::initial(&c);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cont.observe_move(0, 2, &c);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn direction_of_walk_does_not_matter() {
        let n = 9;
        for dir in Direction::BOTH {
            let mut c = cfg(n, &[0, 1]);
            let mut cont = Contamination::initial(&c);
            // Walk the robot that has an empty neighbour in direction `dir`.
            let walker = if dir == Direction::Cw { 1 } else { 0 };
            let mut pos = walker;
            for _ in 0..(n - 2) {
                let next = c.ring().neighbor(pos, dir);
                c.move_robot(pos, next).unwrap();
                cont.observe_move(pos, next, &c);
                pos = next;
            }
            assert!(cont.all_clear(), "direction {dir}");
        }
    }
}
