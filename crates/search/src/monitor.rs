//! Composable run monitors for the three tasks.
//!
//! Every observer in this crate implements `rr_corda::Monitor`, so it plugs
//! directly into the `Engine::step` pipeline (alone or composed in tuples):
//! after every executed move the contamination state, the exploration tracker
//! and the gathering status are updated, and the number of times each
//! perpetual property has been achieved is counted.

use rr_corda::{FaultEvent, LeapRecord, Monitor, MoveRecord, RobotId};
use rr_ring::{Configuration, NodeId};
use serde::{Deserialize, Serialize};

use crate::contamination::Contamination;
use crate::exploration::ExplorationTracker;

impl Monitor for Contamination {
    fn on_move(&mut self, record: &MoveRecord, after: &Configuration) {
        self.observe_move(record.from, record.to, after);
    }
}

impl Monitor for ExplorationTracker {
    fn on_move(&mut self, record: &MoveRecord, _after: &Configuration) {
        self.observe_move(record.robot, record.to);
    }
}

/// Counts clearing and exploration achievements along a run.
///
/// * every time all edges become simultaneously clear, `clearings` is
///   incremented and the contamination state is reset to "all contaminated"
///   (this is the strongest reading of *perpetual* graph searching: the
///   strategy must clear the ring again from scratch, from wherever it
///   currently is);
/// * exploration completions are counted per robot by the embedded
///   [`ExplorationTracker`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchMonitors {
    contamination: Contamination,
    exploration: ExplorationTracker,
    clearings: u64,
    moves_observed: u64,
    moves_at_last_clearing: u64,
    clearing_intervals: Vec<u64>,
}

impl SearchMonitors {
    /// Creates the monitors for a run starting from `initial` with robots at
    /// `initial_positions` (indexed by robot id).
    #[must_use]
    pub fn new(initial: &Configuration, initial_positions: &[NodeId]) -> Self {
        SearchMonitors {
            contamination: Contamination::initial(initial),
            exploration: ExplorationTracker::new(initial.n(), initial_positions),
            clearings: 0,
            moves_observed: 0,
            moves_at_last_clearing: 0,
            clearing_intervals: Vec::new(),
        }
    }

    /// Observes one executed move and the configuration after it.
    pub fn observe(&mut self, record: &MoveRecord, after: &Configuration) {
        self.moves_observed += 1;
        self.contamination
            .observe_move(record.from, record.to, after);
        self.exploration.observe_move(record.robot, record.to);
        if self.contamination.all_clear() {
            self.clearings += 1;
            self.clearing_intervals
                .push(self.moves_observed - self.moves_at_last_clearing);
            self.moves_at_last_clearing = self.moves_observed;
            self.contamination.reset();
            self.contamination.observe_configuration(after);
        }
    }

    /// Number of times the whole ring has been cleared since the start of the
    /// run (each clearing restarts from a fully contaminated ring).
    #[must_use]
    pub fn clearings(&self) -> u64 {
        self.clearings
    }

    /// Number of moves between consecutive clearings (one entry per clearing).
    #[must_use]
    pub fn clearing_intervals(&self) -> &[u64] {
        &self.clearing_intervals
    }

    /// Number of moves observed so far.
    #[must_use]
    pub fn moves_observed(&self) -> u64 {
        self.moves_observed
    }

    /// The embedded exploration tracker.
    #[must_use]
    pub fn exploration(&self) -> &ExplorationTracker {
        &self.exploration
    }

    /// The current contamination state.
    #[must_use]
    pub fn contamination(&self) -> &Contamination {
        &self.contamination
    }

    /// Minimum number of full exploration sweeps completed by any robot.
    #[must_use]
    pub fn min_exploration_completions(&self) -> u64 {
        self.exploration.min_completions()
    }

    /// Whether the run has demonstrated at least `clearings` ring clearings
    /// and at least `explorations` full sweeps by every robot.
    #[must_use]
    pub fn demonstrated(&self, clearings: u64, explorations: u64) -> bool {
        self.clearings >= clearings && self.exploration.min_completions() >= explorations
    }
}

impl Monitor for SearchMonitors {
    fn on_move(&mut self, record: &MoveRecord, after: &Configuration) {
        self.observe(record, after);
    }
}

/// Tracks whether and when a run achieves gathering (all robots on one node)
/// and whether the gathered state persists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct GatheringMonitor {
    gathered_since: Option<u64>,
    moves_observed: u64,
    broke_gathering: bool,
}

impl GatheringMonitor {
    /// Creates the monitor.
    #[must_use]
    pub fn new() -> Self {
        GatheringMonitor::default()
    }

    /// Observes one executed move and the configuration after it.
    pub fn observe(&mut self, _record: &MoveRecord, after: &Configuration) {
        self.moves_observed += 1;
        if after.is_gathered() {
            if self.gathered_since.is_none() {
                self.gathered_since = Some(self.moves_observed);
            }
        } else if self.gathered_since.is_some() {
            // A robot moved away after gathering was reached.
            self.broke_gathering = true;
            self.gathered_since = None;
        }
    }

    /// Whether gathering is currently achieved.
    #[must_use]
    pub fn is_gathered(&self) -> bool {
        self.gathered_since.is_some()
    }

    /// The move count at which gathering was (last) achieved.
    #[must_use]
    pub fn gathered_at(&self) -> Option<u64> {
        self.gathered_since
    }

    /// Whether the run ever reached gathering and then destroyed it (which a
    /// correct gathering algorithm must never do).
    #[must_use]
    pub fn broke_gathering(&self) -> bool {
        self.broke_gathering
    }

    /// Number of moves observed.
    #[must_use]
    pub fn moves_observed(&self) -> u64 {
        self.moves_observed
    }
}

impl Monitor for GatheringMonitor {
    fn on_move(&mut self, record: &MoveRecord, after: &Configuration) {
        self.observe(record, after);
    }

    fn on_leap(&mut self, record: &LeapRecord, after: &Configuration) {
        // A batched leap replaces `record.moves` individual move callbacks.
        // Gathering is an aggregate property, so observing only the post-leap
        // configuration is sound: the leap certificate guarantees the
        // occupancy structure changes at most at the final leaped round, so
        // no gathering event can be reached *and* destroyed strictly inside
        // one leap.
        self.moves_observed += record.moves;
        if after.is_gathered() {
            if self.gathered_since.is_none() {
                self.gathered_since = Some(self.moves_observed);
            }
        } else if self.gathered_since.is_some() {
            self.broke_gathering = true;
            self.gathered_since = None;
        }
    }
}

/// Records the faults an engine's armed
/// [`FaultModel`](rr_corda::FaultModel) actually inflicted on a run: which
/// robots crashed (as a bitmask, matching the checker's per-path crashed
/// word), how many Looks were corrupted, and when the first fault fired.
///
/// Composes in monitor tuples like every other observer here, so a sweep
/// cell can pair it with [`SearchMonitors`] or [`GatheringMonitor`] to
/// attribute a degraded outcome to the fault that caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultLog {
    crashed_mask: u32,
    corrupted_looks: u64,
    first_fault_step: Option<u64>,
}

impl FaultLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        FaultLog::default()
    }

    /// Bitmask of crashed robot ids (bit `r` set ⇔ robot `r` crash-stopped).
    #[must_use]
    pub fn crashed_mask(&self) -> u32 {
        self.crashed_mask
    }

    /// Whether `robot` crash-stopped during the run.
    #[must_use]
    pub fn is_crashed(&self, robot: RobotId) -> bool {
        robot < 32 && self.crashed_mask & (1 << robot) != 0
    }

    /// Number of robots that crash-stopped.
    #[must_use]
    pub fn crashes(&self) -> u32 {
        self.crashed_mask.count_ones()
    }

    /// Number of corrupted Looks observed.
    #[must_use]
    pub fn corrupted_looks(&self) -> u64 {
        self.corrupted_looks
    }

    /// Global step of the first fault, if any fired.
    #[must_use]
    pub fn first_fault_step(&self) -> Option<u64> {
        self.first_fault_step
    }

    /// Whether any fault took observable effect.
    #[must_use]
    pub fn any(&self) -> bool {
        self.crashed_mask != 0 || self.corrupted_looks != 0
    }
}

impl Monitor for FaultLog {
    fn on_fault(&mut self, event: &FaultEvent, _config: &Configuration) {
        let step = match event {
            FaultEvent::Crashed { robot, step } => {
                if *robot < 32 {
                    self.crashed_mask |= 1 << *robot;
                }
                *step
            }
            FaultEvent::CorruptedLook { step, .. } => {
                self.corrupted_looks += 1;
                *step
            }
        };
        if self.first_fault_step.is_none() {
            self.first_fault_step = Some(step);
        }
    }
}

/// Convenience: positions vector (robot id → node) maintained incrementally
/// from move records; useful when a monitor needs robot positions but the
/// simulator is owned elsewhere.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PositionTracker {
    positions: Vec<NodeId>,
}

impl PositionTracker {
    /// Creates the tracker from initial positions (indexed by robot id).
    #[must_use]
    pub fn new(initial_positions: &[NodeId]) -> Self {
        PositionTracker {
            positions: initial_positions.to_vec(),
        }
    }

    /// Applies a move record.
    pub fn observe(&mut self, record: &MoveRecord) {
        if record.robot < self.positions.len() {
            self.positions[record.robot] = record.to;
        }
    }

    /// Current position of `robot`.
    #[must_use]
    pub fn position(&self, robot: RobotId) -> NodeId {
        self.positions[robot]
    }

    /// All positions, indexed by robot id.
    #[must_use]
    pub fn positions(&self) -> &[NodeId] {
        &self.positions
    }
}

impl Monitor for PositionTracker {
    fn on_move(&mut self, record: &MoveRecord, _after: &Configuration) {
        self.observe(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_ring::Ring;

    fn record(robot: RobotId, from: NodeId, to: NodeId) -> MoveRecord {
        MoveRecord {
            robot,
            from,
            to,
            step: 0,
        }
    }

    #[test]
    fn search_monitor_counts_a_two_robot_sweep() {
        let ring = Ring::new(6);
        let mut c = Configuration::new_exclusive(ring, &[0, 1]).unwrap();
        let mut m = SearchMonitors::new(&c, &[0, 1]);
        // Robot 1 sweeps from node 1 to node 5.
        let mut pos = 1;
        for next in [2, 3, 4, 5] {
            c.move_robot(pos, next).unwrap();
            m.observe(&record(1, pos, next), &c);
            pos = next;
        }
        assert_eq!(m.clearings(), 1);
        assert_eq!(m.clearing_intervals(), &[4]);
        assert_eq!(m.moves_observed(), 4);
        // After the clearing the contamination was reset: not all clear anymore.
        assert!(!m.contamination().all_clear());
        // Exploration: robot 1 visited 1,2,3,4,5 but not 0.
        assert_eq!(m.exploration().visited_count(1), 5);
        assert_eq!(m.min_exploration_completions(), 0);
        assert!(!m.demonstrated(1, 1));
        assert!(m.demonstrated(1, 0));
    }

    #[test]
    fn gathering_monitor_detects_gathering_and_breakage() {
        let ring = Ring::new(5);
        let mut c = Configuration::from_counts(ring, vec![1, 0, 1, 0, 0]).unwrap();
        let mut g = GatheringMonitor::new();
        assert!(!g.is_gathered());
        c.move_robot(0, 1).unwrap();
        g.observe(&record(0, 0, 1), &c);
        assert!(!g.is_gathered());
        c.move_robot(1, 2).unwrap();
        g.observe(&record(0, 1, 2), &c);
        assert!(g.is_gathered());
        assert_eq!(g.gathered_at(), Some(2));
        assert!(!g.broke_gathering());
        // A robot leaves: gathering is broken.
        c.move_robot(2, 3).unwrap();
        g.observe(&record(0, 2, 3), &c);
        assert!(!g.is_gathered());
        assert!(g.broke_gathering());
    }

    #[test]
    fn gathering_monitor_aggregates_leaps_like_moves() {
        let ring = Ring::new(8);
        // Walker started at node 0 with a multiplicity of two at node 3; a
        // 3-round leap walked it onto the multiplicity, and the monitor only
        // sees the post-leap configuration.
        let c = Configuration::from_counts(ring, vec![0, 0, 0, 3, 0, 0, 0, 0]).unwrap();
        let mut g = GatheringMonitor::new();
        g.on_leap(
            &LeapRecord {
                rounds: 3,
                moves: 3,
                looks: 9,
                step: 18,
            },
            &c,
        );
        assert!(g.is_gathered());
        assert_eq!(g.gathered_at(), Some(3));
        assert_eq!(g.moves_observed(), 3);
        assert!(!g.broke_gathering());
    }

    #[test]
    fn fault_log_attributes_crashes_and_corruptions() {
        use rr_corda::CorruptionKind;
        let ring = Ring::new(5);
        let c = Configuration::new_exclusive(ring, &[0, 2]).unwrap();
        let mut log = FaultLog::new();
        assert!(!log.any());
        log.on_fault(&FaultEvent::Crashed { robot: 1, step: 4 }, &c);
        log.on_fault(
            &FaultEvent::CorruptedLook {
                robot: 0,
                step: 9,
                kind: CorruptionKind::PhantomMultiplicity,
            },
            &c,
        );
        // A crash is noted once by the engine; a second note for the same
        // robot is idempotent on the mask either way.
        log.on_fault(&FaultEvent::Crashed { robot: 1, step: 6 }, &c);
        assert!(log.any());
        assert_eq!(log.crashed_mask(), 0b10);
        assert!(log.is_crashed(1));
        assert!(!log.is_crashed(0));
        assert_eq!(log.crashes(), 1);
        assert_eq!(log.corrupted_looks(), 1);
        assert_eq!(log.first_fault_step(), Some(4));
    }

    #[test]
    fn position_tracker_follows_moves() {
        let mut p = PositionTracker::new(&[0, 4]);
        p.observe(&record(1, 4, 5));
        p.observe(&record(0, 0, 1));
        p.observe(&record(7, 0, 3)); // unknown robot: ignored
        assert_eq!(p.position(0), 1);
        assert_eq!(p.position(1), 5);
        assert_eq!(p.positions(), &[1, 5]);
    }
}
