//! # rr-search — graph searching and exploration substrate
//!
//! This crate implements the verification oracles for the three tasks of the
//! paper:
//!
//! * [`contamination`] — the mixed graph-searching semantics of Section 4.1:
//!   every edge starts contaminated, an edge is cleared when a robot traverses
//!   it or when both its endpoints are occupied, and a cleared edge is
//!   instantaneously recontaminated if it can reach a contaminated edge
//!   through unoccupied nodes;
//! * [`exploration`] — per-robot node-visit tracking for the exclusive
//!   perpetual exploration task (every robot must visit every node infinitely
//!   often);
//! * [`monitor`] — implementations of the `rr_corda::Monitor` trait that plug
//!   into the `rr_corda::Engine` stepping pipeline and count how often the
//!   perpetual properties (full clearing, full exploration, gathering) are
//!   achieved.
//!
//! Nothing in this crate makes decisions; it only observes runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contamination;
pub mod exploration;
pub mod monitor;

pub use contamination::{occupied_mask, Contamination};
pub use exploration::ExplorationTracker;
pub use monitor::{FaultLog, GatheringMonitor, PositionTracker, SearchMonitors};
