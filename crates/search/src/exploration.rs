//! Per-robot node-visit tracking for the exclusive perpetual exploration task.

use rr_corda::RobotId;
use rr_ring::NodeId;
use serde::{Deserialize, Serialize};

/// Tracks, for every robot, which nodes it has visited since the last reset.
///
/// Exclusive perpetual exploration requires every robot to visit every node
/// infinitely often; the monitor layer counts how many times each robot
/// completes a full sweep of the ring (each completion resets that robot's
/// visit set).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplorationTracker {
    n: usize,
    visited: Vec<Vec<bool>>,
    completions: Vec<u64>,
}

impl ExplorationTracker {
    /// Creates a tracker for `k` robots on an `n`-node ring, crediting each
    /// robot with a visit of its starting node.
    #[must_use]
    pub fn new(n: usize, initial_positions: &[NodeId]) -> Self {
        let k = initial_positions.len();
        let mut visited = vec![vec![false; n]; k];
        for (r, &v) in initial_positions.iter().enumerate() {
            visited[r][v] = true;
        }
        ExplorationTracker {
            n,
            visited,
            completions: vec![0; k],
        }
    }

    /// Number of robots tracked.
    #[must_use]
    pub fn num_robots(&self) -> usize {
        self.visited.len()
    }

    /// Records that `robot` is now at node `to`.
    ///
    /// When this completes the robot's sweep of all `n` nodes, the robot's
    /// visit set is reset (keeping only the current node) and its completion
    /// counter is incremented.
    pub fn observe_move(&mut self, robot: RobotId, to: NodeId) {
        if robot >= self.visited.len() || to >= self.n {
            return;
        }
        self.visited[robot][to] = true;
        if self.visited[robot].iter().all(|&b| b) {
            self.completions[robot] += 1;
            self.visited[robot].iter_mut().for_each(|b| *b = false);
            self.visited[robot][to] = true;
        }
    }

    /// Number of distinct nodes `robot` has visited since its last completed
    /// sweep.
    #[must_use]
    pub fn visited_count(&self, robot: RobotId) -> usize {
        self.visited[robot].iter().filter(|&&b| b).count()
    }

    /// How many full sweeps of the ring each robot has completed.
    #[must_use]
    pub fn completions(&self) -> &[u64] {
        &self.completions
    }

    /// The minimum number of completed sweeps over all robots — the figure of
    /// merit for *perpetual* exploration (it must grow without bound).
    #[must_use]
    pub fn min_completions(&self) -> u64 {
        self.completions.iter().copied().min().unwrap_or(0)
    }

    /// Whether every robot has completed at least `count` full sweeps.
    #[must_use]
    pub fn all_completed_at_least(&self, count: u64) -> bool {
        self.min_completions() >= count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_positions_count_as_visits() {
        let t = ExplorationTracker::new(5, &[0, 2]);
        assert_eq!(t.num_robots(), 2);
        assert_eq!(t.visited_count(0), 1);
        assert_eq!(t.visited_count(1), 1);
        assert_eq!(t.min_completions(), 0);
    }

    #[test]
    fn completing_a_sweep_increments_and_resets() {
        let mut t = ExplorationTracker::new(4, &[0]);
        t.observe_move(0, 1);
        t.observe_move(0, 2);
        assert_eq!(t.visited_count(0), 3);
        t.observe_move(0, 3);
        assert_eq!(t.completions(), &[1]);
        // After completion only the current node is marked.
        assert_eq!(t.visited_count(0), 1);
        // A second sweep.
        t.observe_move(0, 0);
        t.observe_move(0, 1);
        t.observe_move(0, 2);
        assert_eq!(t.completions(), &[2]);
        assert!(t.all_completed_at_least(2));
    }

    #[test]
    fn min_completions_takes_the_slowest_robot() {
        let mut t = ExplorationTracker::new(3, &[0, 1]);
        // Robot 0 sweeps, robot 1 does not move.
        t.observe_move(0, 1);
        t.observe_move(0, 2);
        assert_eq!(t.completions(), &[1, 0]);
        assert_eq!(t.min_completions(), 0);
        assert!(!t.all_completed_at_least(1));
    }

    #[test]
    fn out_of_range_observations_are_ignored() {
        let mut t = ExplorationTracker::new(3, &[0]);
        t.observe_move(7, 1);
        t.observe_move(0, 9);
        assert_eq!(t.visited_count(0), 1);
        assert_eq!(t.completions(), &[0]);
    }

    #[test]
    fn revisits_do_not_double_count() {
        let mut t = ExplorationTracker::new(4, &[0]);
        t.observe_move(0, 1);
        t.observe_move(0, 0);
        t.observe_move(0, 1);
        assert_eq!(t.visited_count(0), 2);
        assert_eq!(t.completions(), &[0]);
    }
}
