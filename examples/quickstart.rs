//! Quickstart: solve all three tasks of the paper on one ring.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ring_robots::prelude::*;

fn main() {
    let n = 13;
    let k = 5;
    // A rigid exclusive starting configuration of 5 robots on a 13-node ring.
    let start = Configuration::from_gaps_at_origin(&[0, 2, 1, 0, 5]);
    assert_eq!(start.n(), n);
    assert_eq!(start.num_robots(), k);
    println!(
        "initial configuration: {start}  (rigid = {})",
        ring_robots::ring::symmetry::is_rigid(&start)
    );

    // 1. Exclusive perpetual graph searching + exploration.
    match protocol_for(Task::GraphSearching, n, k) {
        Some(protocol) => {
            let mut scheduler = RoundRobinScheduler::new();
            let stats = run_searching(protocol, &start, &mut scheduler, 5, 1, 200_000)
                .expect("simulation runs");
            println!(
                "graph searching : {} full clearings, every robot explored the ring {} time(s), {} moves",
                stats.clearings, stats.min_exploration_completions, stats.moves
            );
        }
        None => println!("graph searching : not solvable for (n={n}, k={k})"),
    }

    // 2. Phase 1 on its own: Align to the special configuration C*.
    let mut scheduler = RoundRobinScheduler::new();
    let (c_star, moves) = run_to_c_star(&start, &mut scheduler, 100_000).expect("align converges");
    println!("align           : reached {c_star} after {moves} moves");

    // 3. Gathering with local multiplicity detection.
    let mut scheduler = AsynchronousScheduler::seeded(42);
    let stats = run_gathering(&start, &mut scheduler, 500_000).expect("simulation runs");
    println!(
        "gathering       : gathered = {} after {} moves (asynchronous adversary)",
        stats.gathered, stats.moves
    );

    // 4. What does the paper say about other team sizes on this ring?
    println!("\nfeasibility of graph searching on a {n}-node ring:");
    for team in 1..n {
        println!("  k = {team:>2}: {:?}", searching_feasibility(n, team));
    }
}
