//! Regenerate the paper's feasibility characterization of exclusive perpetual
//! graph searching (experiment E1) as a text table.
//!
//! ```text
//! cargo run --release --example characterization_table            # claims only
//! cargo run --release --example characterization_table -- --validate
//! ```
//!
//! With `--validate`, every solvable cell is cross-checked by running the
//! dispatched algorithm under three different schedulers (slower).

use ring_robots::checker::characterization::{build_characterization, render_table};

fn main() {
    let validate = std::env::args().any(|a| a == "--validate");
    let max_n = std::env::args()
        .skip_while(|a| a != "--max-n")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(18usize);
    let cells = build_characterization(3..=max_n, validate, 2024);
    println!("{}", render_table(&cells));
    if validate {
        let failed: Vec<_> = cells
            .iter()
            .filter(|c| c.code() == '!')
            .map(|c| (c.n, c.k))
            .collect();
        if failed.is_empty() {
            println!("every solvable cell was validated by simulation.");
        } else {
            println!("cells whose claim failed validation: {failed:?}");
        }
    }
}
