//! Perpetual graph searching in detail: watch the A-a … A-e cycle of
//! Algorithm Ring Clearing and the three-move cycle of Algorithm NminusThree.
//!
//! ```text
//! cargo run --release --example perpetual_search
//! ```

use ring_robots::core::clearing::{classify, run_searching};
use ring_robots::core::nminus_three::NminusThreeProtocol;
use ring_robots::core::unified::{protocol_for, Task};
use ring_robots::prelude::*;

fn watch_cycle(n: usize, k: usize, start: &Configuration, steps: usize) {
    println!("-- Ring Clearing phase-2 cycle on (n = {n}, k = {k}) --");
    let protocol = RingClearingProtocol::new();
    let mut sim = Engine::with_default_options(protocol, start.clone()).expect("valid start");
    let mut scheduler = RoundRobinScheduler::new();
    let mut last_class = None;
    let mut moves = 0usize;
    while moves < steps {
        let step = scheduler.next(&sim.scheduler_view());
        let report = sim.step(&step, &mut ()).expect("no exclusivity violation");
        if !report.moved() {
            continue;
        }
        moves += report.moves.len();
        let word = View::new(sim.configuration().gap_sequence());
        let class = classify(&word);
        if class != last_class {
            println!(
                "  after {moves:>3} moves: {} class {}",
                sim.configuration(),
                class.map_or("outside A".to_string(), |c| c.to_string())
            );
            last_class = class;
        }
    }
}

fn main() {
    // Ring Clearing: k = 5 robots on a 13-node ring.
    let start = Configuration::from_gaps_at_origin(&[0, 0, 0, 1, 7]);
    watch_cycle(13, 5, &start, 30);

    // Summary statistics over a longer run, for both algorithms.
    println!("\n-- long-run statistics (round-robin scheduler) --");
    for (n, k) in [(13usize, 5usize), (16, 8), (12, 9), (14, 11)] {
        let Some(protocol) = protocol_for(Task::GraphSearching, n, k) else {
            println!("(n={n}, k={k}): not covered by the paper's algorithms");
            continue;
        };
        let start = ring_robots::ring::enumerate::enumerate_rigid_configurations(n, k)
            .into_iter()
            .next()
            .expect("rigid configuration exists");
        let mut scheduler = RoundRobinScheduler::new();
        let stats = run_searching(protocol, &start, &mut scheduler, 10, 1, 400_000).expect("runs");
        let period = stats
            .clearing_intervals
            .iter()
            .skip(1)
            .copied()
            .collect::<Vec<_>>();
        println!(
            "(n={n:>2}, k={k:>2}) {:<14} clearings={:<3} steady period={:?} moves={}",
            protocol.name(),
            stats.clearings,
            period.first().copied().unwrap_or(0),
            stats.moves
        );
    }

    // NminusThree under an adversarial (asynchronous) scheduler.
    println!("\n-- NminusThree under the asynchronous adversary --");
    let n = 12;
    let start = ring_robots::ring::enumerate::enumerate_rigid_configurations(n, n - 3)
        .into_iter()
        .next()
        .expect("rigid configuration exists");
    let mut scheduler = AsynchronousScheduler::seeded(7);
    let stats = run_searching(
        NminusThreeProtocol::new(),
        &start,
        &mut scheduler,
        5,
        0,
        400_000,
    )
    .expect("runs");
    println!(
        "(n={n}, k={}) clearings={} min exploration sweeps={}",
        n - 3,
        stats.clearings,
        stats.min_exploration_completions
    );
}
