//! Gathering with local multiplicity detection, under every scheduler the
//! simulator provides, plus a step-by-step trace of the contraction phase.
//!
//! ```text
//! cargo run --release --example gathering_demo
//! ```

use rand::SeedableRng;
use ring_robots::core::gathering::run_gathering;
use ring_robots::prelude::*;

fn trace_small_run() {
    println!("-- step-by-step gathering of 4 robots on a 10-node ring --");
    let start = Configuration::from_gaps_at_origin(&[0, 1, 2, 3]);
    let mut sim = Engine::with_default_options(GatheringProtocol::new(), start).expect("valid");
    let mut scheduler = RoundRobinScheduler::new();
    println!("  start: {}", sim.configuration());
    let mut guard = 0;
    while !sim.configuration().is_gathered() && guard < 10_000 {
        let step = scheduler.next(&sim.scheduler_view());
        let report = sim.step(&step, &mut ()).expect("no failure");
        for rec in report.moves {
            println!(
                "  robot {} moves {} -> {}   {}",
                rec.robot,
                rec.from,
                rec.to,
                sim.configuration()
            );
        }
        guard += 1;
    }
    println!("  gathered after {} moves\n", sim.move_count());
}

fn main() {
    trace_small_run();

    println!("-- gathering across ring sizes and schedulers --");
    println!(
        "{:>4} {:>4} {:>14} {:>14} {:>14}",
        "n", "k", "round-robin", "ssync", "async"
    );
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    for (n, k) in [(8usize, 4usize), (12, 5), (16, 7), (24, 11), (40, 9)] {
        let start = ring_robots::ring::enumerate::random_rigid_configuration(n, k, &mut rng)
            .expect("rigid configuration exists");
        let mut row = format!("{n:>4} {k:>4}");
        let mut rr = RoundRobinScheduler::new();
        let mut ss = SemiSynchronousScheduler::seeded(1);
        let mut aa = AsynchronousScheduler::seeded(1);
        let budget = 2_000_000;
        for stats in [
            run_gathering(&start, &mut rr, budget).expect("runs"),
            run_gathering(&start, &mut ss, budget).expect("runs"),
            run_gathering(&start, &mut aa, budget).expect("runs"),
        ] {
            row.push_str(&format!(
                " {:>8} moves",
                if stats.gathered {
                    stats.moves.to_string()
                } else {
                    "FAILED".to_string()
                }
            ));
        }
        println!("{row}");
    }
}
