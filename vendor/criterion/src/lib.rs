//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of the criterion API the `rr-bench` targets use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!` — backed by a simple wall-clock harness: each benchmark
//! is warmed up, then timed over a fixed measurement window, and the
//! mean/min per-iteration times are printed.  No statistics, no HTML reports;
//! swap the real criterion back in from the workspace manifest for those.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher<'a> {
    config: &'a Config,
    /// Filled in by [`Bencher::iter`].
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    iterations: u64,
    total: Duration,
    best: Duration,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly: first for the warm-up window, then for the
    /// measurement window, and records the timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: at least one call, up to the warm-up window.
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        // Measurement.
        let mut iterations = 0u64;
        let mut best = Duration::MAX;
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            let dt = t0.elapsed();
            best = best.min(dt);
            iterations += 1;
            if started.elapsed() >= self.config.measurement_time
                && iterations >= self.config.sample_size as u64
            {
                break;
            }
        }
        self.result = Some(Sample {
            iterations,
            total: started.elapsed(),
            best,
        });
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// The benchmark manager (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
    /// When true (the `--test` flag cargo passes under `cargo test`), each
    /// benchmark body runs exactly once, untimed.
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Sets the minimum number of measured iterations.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up window.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement window.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Applies command-line arguments (`--test`, a name filter).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" => {}
                "--exact" | "--nocapture" | "-q" | "--quiet" => {}
                s if s.starts_with("--") => {
                    // Consume a value for unknown --key value options.
                    let _ = args.next();
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        let name = id.to_string();
        self.run_one(&name, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            // `cargo test` runs bench binaries: execute once for correctness.
            let once = Config {
                sample_size: 1,
                warm_up_time: Duration::ZERO,
                measurement_time: Duration::ZERO,
            };
            let mut b = Bencher {
                config: &once,
                result: None,
            };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }
        let mut b = Bencher {
            config: &self.config,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(s) => {
                let mean = s.total.as_nanos() as f64 / s.iterations.max(1) as f64;
                println!(
                    "{id:<56} mean {:>12} min {:>12} ({} iters)",
                    format_ns(mean),
                    format_ns(s.best.as_nanos() as f64),
                    s.iterations
                );
            }
            None => println!("{id:<56} (no measurement)"),
        }
    }

    /// Runs registered group functions (used by `criterion_main!`).
    pub fn final_summary(&self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named group of benchmarks sharing the parent configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: std::fmt::Display, T: ?Sized, F: FnMut(&mut Bencher<'_>, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Overrides the minimum sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.config.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.config.measurement_time = d;
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Re-export matching criterion's `black_box` (deprecated there in favour of
/// `std::hint::black_box`, which the benches already use directly).
pub use std::hint::black_box;

/// Declares a group of benchmark functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let config = Config {
            sample_size: 3,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
        };
        let mut b = Bencher {
            config: &config,
            result: None,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        let s = b.result.expect("measured");
        assert!(s.iterations >= 3);
        assert!(count > s.iterations); // warm-up also ran
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn format_ns_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
