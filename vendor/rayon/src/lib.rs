//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! slice of the rayon API the workspace uses — `vec.into_par_iter()`,
//! `slice.par_iter()`, `.map(...)`, `.collect()` — with *real* parallelism:
//! a fixed pool of `std::thread::scope` workers claim items through an atomic
//! cursor and results are reassembled in input order.  There is no work
//! stealing and no nested-parallelism scheduling; for the coarse-grained
//! embarrassingly-parallel sweeps in this workspace that is all that is
//! needed.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on a worker pool, preserving input order.
fn ordered_parallel_map<T: Send, O: Send, F: Fn(T) -> O + Sync>(items: Vec<T>, f: F) -> Vec<O> {
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .min(len);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let input: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let output: Vec<Mutex<Option<O>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                let item = input[i].lock().expect("input poisoned").take();
                let Some(item) = item else { break };
                let result = f(item);
                *output[i].lock().expect("output poisoned") = Some(result);
            });
        }
    });
    output
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("output poisoned")
                .expect("worker completed")
        })
        .collect()
}

/// A parallel iterator pipeline: the collected items plus a mapping stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, O: Send, F: Fn(T) -> O + Sync> ParMap<T, F> {
    /// Adds another mapping stage.
    pub fn map<O2: Send, G: Fn(O) -> O2 + Sync>(self, g: G) -> ParMap<T, impl Fn(T) -> O2 + Sync>
    where
        F: Sync,
    {
        let f = self.f;
        ParMap {
            items: self.items,
            f: move |t| g(f(t)),
        }
    }

    /// Runs the pipeline in parallel and collects results in input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        ordered_parallel_map(self.items, self.f)
            .into_iter()
            .collect()
    }
}

/// A not-yet-mapped parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Adds a mapping stage.
    pub fn map<O: Send, F: Fn(T) -> O + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Collects the items unchanged (identity pipeline).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Types convertible into an owning parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Types whose references can be iterated in parallel (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced by the iterator (a shared reference).
    type Item: Send;

    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A fork-join scope, mirroring `rayon::scope`: tasks spawned inside run
/// concurrently and are all joined before `scope` returns.
///
/// The stand-in maps each `spawn` to one scoped OS thread
/// (`std::thread::scope`) instead of a work-stealing pool — the right
/// trade-off for the coarse fan-outs this workspace uses (a handful of
/// long-lived workers per call, not thousands of micro-tasks).  Unlike the
/// iterator pipeline above, the worker count is fully caller-controlled:
/// spawning two tasks runs two real threads even on a single-core host,
/// which is what lets the checker's determinism tests exercise genuine
/// concurrency everywhere.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the enclosing scope; joined when
    /// the [`scope`] call returns.  A panic in the task propagates out of
    /// [`scope`], like rayon's.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let scope = Scope { inner: self.inner };
        self.inner.spawn(move || body(&scope));
    }
}

/// Creates a fork-join [`Scope`] and blocks until every spawned task has
/// completed (see [`Scope::spawn`]).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// The common imports (subset of `rayon::prelude`).
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let v = vec![(1usize, 2usize), (3, 4)];
        let sums: Vec<usize> = v.par_iter().map(|&(a, b)| a + b).collect();
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn chained_maps_compose() {
        let v: Vec<u32> = (0..64).collect();
        let out: Vec<u32> = v.into_par_iter().map(|x| x + 1).map(|x| x * 3).collect();
        assert_eq!(out[0], 3);
        assert_eq!(out[63], 192);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let mut slots = vec![0u64; 8];
        crate::scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move |_| *slot = (i as u64 + 1) * 3);
            }
        });
        assert_eq!(slots, vec![3, 6, 9, 12, 15, 18, 21, 24]);
    }

    #[test]
    fn scope_supports_nested_spawns() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        crate::scope(|s| {
            s.spawn(|s| {
                hits.fetch_add(1, Ordering::Relaxed);
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
