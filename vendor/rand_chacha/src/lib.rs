//! Offline stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha8 block function (D. J. Bernstein's ChaCha with
//! 8 rounds) behind the `rand` stand-in traits.  Seeding follows the same
//! recipe as `rand_core::SeedableRng::seed_from_u64`: the 64-bit seed is
//! expanded to the 256-bit key with a SplitMix64 stream.  Streams are **not**
//! bit-compatible with the real `rand_chacha` crate (which seeds and counts
//! blocks slightly differently); within this workspace all that matters is
//! that a fixed seed yields a fixed, well-distributed stream.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng, SplitMix64};

const BLOCK_WORDS: usize = 16;
const CHACHA8_DOUBLE_ROUNDS: usize = 4;

/// A deterministic ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The ChaCha input block: constants, key, block counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// Output of the last block function invocation.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer`; `BLOCK_WORDS` means "refill".
    cursor: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Builds the generator from a 256-bit key.
    #[must_use]
    pub fn from_key(key: [u32; 8]) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // words 12..16: 64-bit block counter + zero nonce.
        ChaCha8Rng {
            state,
            buffer: [0; BLOCK_WORDS],
            cursor: BLOCK_WORDS,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA8_DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for ((out, w), st) in self.buffer.iter_mut().zip(&working).zip(&self.state) {
            *out = w.wrapping_add(*st);
        }
        // Advance the 64-bit block counter.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut expander = SplitMix64::new(state);
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = expander.next_u64();
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        ChaCha8Rng::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn bits_look_uniform() {
        // Coarse sanity: bit balance over 64k words within 2%.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u64;
        let samples = 1 << 16;
        for _ in 0..samples {
            ones += u64::from(rng.next_u32().count_ones());
        }
        let expected = samples as f64 * 16.0;
        assert!((ones as f64 - expected).abs() < expected * 0.02, "{ones}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let _ = a.gen_range(0usize..10);
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
