//! Offline stand-in for `serde_json` (serialization only).
//!
//! Implements a [`serde::Serializer`] that writes compact JSON with the same
//! data-model mapping as the real crate: unit variants become strings,
//! newtype/tuple/struct variants become single-key objects, `None`/`()`
//! become `null`, map keys must serialize as strings, and non-finite floats
//! are errors.  Field order is declaration order, so output is deterministic
//! — the property the sweep runner's byte-identical-records guarantee rests
//! on.
//!
//! Known honest deviation from the real crate: floats are printed with Rust's
//! shortest-round-trip `Display` (plus a forced `.0` for integral values),
//! which can differ from ryu in exotic cases.

use std::fmt;

use serde::ser::{
    self, SerializeMap, SerializeSeq, SerializeStruct, SerializeStructVariant, SerializeTuple,
    SerializeTupleStruct, SerializeTupleVariant,
};
use serde::{Serialize, Serializer};

/// Serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(JsonSerializer { out: &mut out })?;
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: std::io::Write, T: ?Sized + Serialize>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(e.to_string()))
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The compact JSON serializer: writes directly into a `String`.
struct JsonSerializer<'a> {
    out: &'a mut String,
}

/// In-progress JSON container: `close` is appended by `end()`.
struct Compound<'a> {
    out: &'a mut String,
    first: bool,
    close: &'static str,
}

impl Compound<'_> {
    fn comma(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }

    fn element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.comma();
        value.serialize(JsonSerializer { out: self.out })
    }

    fn named_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.comma();
        write_escaped(self.out, key);
        self.out.push(':');
        value.serialize(JsonSerializer { out: self.out })
    }

    fn finish(self) -> Result<(), Error> {
        self.out.push_str(self.close);
        Ok(())
    }
}

impl<'a> Serializer for JsonSerializer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        if !v.is_finite() {
            return Err(Error("cannot serialize non-finite float".into()));
        }
        if v == v.trunc() && v.abs() < 1e16 {
            self.out.push_str(&format!("{v:.1}"));
        } else {
            self.out.push_str(&v.to_string());
        }
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), Error> {
        write_escaped(self.out, &v.to_string());
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        write_escaped(self.out, variant);
        Ok(())
    }

    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push(':');
        value.serialize(JsonSerializer { out: self.out })?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.out.push('[');
        Ok(Compound {
            out: self.out,
            first: true,
            close: "]",
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push_str(":[");
        Ok(Compound {
            out: self.out,
            first: true,
            close: "]}",
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        Ok(Compound {
            out: self.out,
            first: true,
            close: "}",
        })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        Ok(Compound {
            out: self.out,
            first: true,
            close: "}",
        })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push_str(":{");
        Ok(Compound {
            out: self.out,
            first: true,
            close: "}}",
        })
    }
}

impl SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.element(value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.element(value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.element(value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.element(value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Error> {
        self.comma();
        let mut rendered = String::new();
        key.serialize(JsonSerializer { out: &mut rendered })?;
        if !rendered.starts_with('"') {
            return Err(Error("map keys must serialize as strings".into()));
        }
        self.out.push_str(&rendered);
        self.out.push(':');
        Ok(())
    }

    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        value.serialize(JsonSerializer { out: self.out })
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.named_field(key, value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.named_field(key, value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(to_string(&vec![1usize, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&(1usize, "x")).unwrap(), "[1,\"x\"]");
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(to_string(&Some(5u8)).unwrap(), "5");
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn derived_struct_and_enum() {
        #[derive(Serialize)]
        struct Rec {
            n: usize,
            name: String,
            #[serde(skip)]
            #[allow(dead_code)]
            wall: u64,
            tags: Vec<(usize, usize)>,
        }
        #[derive(Serialize)]
        enum Shape {
            Unit,
            New(u32),
            Pair(u32, u32),
            Named { a: bool },
        }
        let rec = Rec {
            n: 3,
            name: "e6".into(),
            wall: 999,
            tags: vec![(1, 2)],
        };
        assert_eq!(
            to_string(&rec).unwrap(),
            "{\"n\":3,\"name\":\"e6\",\"tags\":[[1,2]]}"
        );
        assert_eq!(to_string(&Shape::Unit).unwrap(), "\"Unit\"");
        assert_eq!(to_string(&Shape::New(7)).unwrap(), "{\"New\":7}");
        assert_eq!(to_string(&Shape::Pair(1, 2)).unwrap(), "{\"Pair\":[1,2]}");
        assert_eq!(
            to_string(&Shape::Named { a: true }).unwrap(),
            "{\"Named\":{\"a\":true}}"
        );
    }

    #[test]
    fn btree_map_keys() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        assert_eq!(to_string(&m).unwrap(), "{\"a\":1,\"b\":2}");
        let mut bad = std::collections::BTreeMap::new();
        bad.insert(1u32, 2u32);
        assert!(to_string(&bad).is_err());
    }
}
