//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of the proptest API the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_filter` /
//! `prop_filter_map`, integer-range and tuple strategies,
//! [`collection::vec`], the [`proptest!`] macro, `prop_assert*` and
//! `prop_assume!`.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case panics with the generated inputs
//!   printed, but is not minimized;
//! * **deterministic** — cases are drawn from a fixed-seed ChaCha8 stream, so
//!   a given test body sees the same inputs on every run (the
//!   `PROPTEST_SEED` environment variable overrides the seed);
//! * rejection (`prop_assume!`, `prop_filter`) skips the case without
//!   counting it against a global rejection budget, except for a per-strategy
//!   retry cap that turns pathological filters into a clear panic.

#![forbid(unsafe_code)]

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = ChaCha8Rng;

#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// How many times a filtering strategy retries before giving up.
const MAX_REJECTS: usize = 10_000;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Returns the seed for the deterministic case stream.
#[must_use]
pub fn seed_from_env() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CAFE_F00D_0001)
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and uses it to build a second strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; retries on rejection.
    fn prop_filter<R: std::fmt::Display, F: Fn(&Self::Value) -> bool>(
        self,
        reason: R,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.to_string(),
            pred,
        }
    }

    /// Maps values through a partial function; retries on `None`.
    fn prop_filter_map<O: std::fmt::Debug, R: std::fmt::Display, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: R,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            reason: reason.to_string(),
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected {MAX_REJECTS} candidates in a row",
            self.reason
        );
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map {:?} rejected {MAX_REJECTS} candidates in a row",
            self.reason
        );
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(usize, u64, u32, u16, u8);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies!((A, B)(A, B, C)(A, B, C, D));

/// A strategy that always yields clones of one value (`Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A size or range of sizes for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi_inclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi_inclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports (subset of `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Rejects the current case (skips it) when the condition does not hold.
///
/// Expands to an early `return` from the per-case closure generated by
/// [`proptest!`].
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !$cond {
            return;
        }
    };
}

/// Declares property tests (subset of the real `proptest!` grammar).
///
/// Each declared function runs `cases` times; every run draws fresh inputs
/// from the listed strategies using a deterministic RNG, prints the inputs on
/// panic, and executes the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng: $crate::TestRng =
                <$crate::TestRng as $crate::__SeedableRng>::seed_from_u64($crate::seed_from_env());
            $(let $arg = &$strategy;)+
            for case in 0..config.cases {
                $(
                    let $arg = $crate::Strategy::generate($arg, &mut rng);
                )+
                let case_body = || {
                    $(let $arg = $arg.clone();)+
                    $body
                };
                if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(case_body)) {
                    eprintln!("proptest case {case} failed for inputs:");
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small_vecs() -> impl Strategy<Value = Vec<usize>> {
        (1usize..4).prop_flat_map(|len| crate::collection::vec(0usize..10, len))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in 0u64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_size(v in small_vecs()) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn filters_apply(x in (0usize..100).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn filter_map_applies(x in (0usize..100).prop_filter_map("halved odds", |x| (x % 2 == 1).then_some(x / 2))) {
            prop_assert!(x < 50);
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn just_yields_the_value() {
        let mut rng: crate::TestRng = rand::SeedableRng::seed_from_u64(1);
        assert_eq!(Just(7usize).generate(&mut rng), 7);
    }

    #[test]
    fn deterministic_given_seed() {
        let strat = (0usize..1000, 0usize..1000);
        let mut a: crate::TestRng = rand::SeedableRng::seed_from_u64(9);
        let mut b: crate::TestRng = rand::SeedableRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
