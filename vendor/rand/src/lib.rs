//! Offline stand-in for `rand` (API subset of rand 0.8).
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! small slice of the `rand` API the workspace actually uses: [`RngCore`],
//! the [`Rng`] extension trait with `gen_range`/`gen_bool`, and
//! [`SeedableRng::seed_from_u64`].  Generators live in the sibling
//! `rand_chacha` stand-in.  The sampling code is deliberately simple (Lemire
//! rejection for integer ranges, 53-bit mantissa for `gen_bool`) — statistical
//! quality matters here only for scheduler adversaries, not cryptography.

#![forbid(unsafe_code)]

/// Core source of randomness: a stream of `u64`s (subset of `rand_core`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A range that can be sampled uniformly (subset of `rand::distributions`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by multiply-shift with rejection (Lemire).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span || lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 uniform mantissa bits, exactly like rand's `f64` sampling.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with SplitMix64
    /// exactly like `rand_core`'s default `seed_from_u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The SplitMix64 stream used to expand 64-bit seeds into full seed material.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the stream from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn splitmix_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
