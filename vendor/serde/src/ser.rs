//! The serialization half of the serde data model (the subset this workspace
//! uses, with the same trait and method signatures as serde 1.x).
//!
//! A [`Serialize`] type describes itself to a [`Serializer`]; the serializer
//! maps the data model onto a concrete format (the workspace's JSON backend
//! lives in the `serde_json` stand-in).  Compound values are driven through
//! the seven `Serialize*` sub-traits exactly as in real serde, so generated
//! derive code is format-agnostic.

/// Errors produced by a [`Serializer`].
pub trait Error: Sized + std::error::Error {
    /// Builds an error carrying a custom message.
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format backend: maps the serde data model onto concrete output.
pub trait Serializer: Sized {
    /// Output produced by a successful serialization.
    type Ok;
    /// Error type of this serializer.
    type Error: Error;
    /// State for serializing a sequence.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing a tuple.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing a tuple struct.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing a tuple enum variant.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing a map.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing a struct.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing a struct enum variant.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error> {
        self.serialize_f64(f64::from(v))
    }
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes the payload of `Some`.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes the unit value `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct like `struct Marker;`.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct like `struct Wrapper(T);`.
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant.
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins serializing a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins serializing a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins serializing a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins serializing a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins serializing a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins serializing a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins serializing a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// State of an in-progress sequence serialization.
pub trait SerializeSeq {
    /// Output produced when the sequence ends.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// State of an in-progress tuple serialization.
pub trait SerializeTuple {
    /// Output produced when the tuple ends.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// State of an in-progress tuple-struct serialization.
pub trait SerializeTupleStruct {
    /// Output produced when the value ends.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the value.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// State of an in-progress tuple-variant serialization.
pub trait SerializeTupleVariant {
    /// Output produced when the value ends.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the value.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// State of an in-progress map serialization.
pub trait SerializeMap {
    /// Output produced when the map ends.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one key.
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes one value.
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Serializes one entry (key then value).
    fn serialize_entry<K: ?Sized + Serialize, V: ?Sized + Serialize>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// State of an in-progress struct serialization.
pub trait SerializeStruct {
    /// Output produced when the struct ends.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// State of an in-progress struct-variant serialization.
pub trait SerializeStructVariant {
    /// Output produced when the value ends.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the value.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize implementations for the std types used as field types.
// ---------------------------------------------------------------------------

macro_rules! serialize_primitive {
    ($($ty:ty => $method:ident as $cast:ty,)*) => {
        $(impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $cast)
            }
        })*
    };
}

serialize_primitive! {
    bool => serialize_bool as bool,
    i8 => serialize_i8 as i8,
    i16 => serialize_i16 as i16,
    i32 => serialize_i32 as i32,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u8 as u8,
    u16 => serialize_u16 as u16,
    u32 => serialize_u32 as u32,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
    f32 => serialize_f32 as f32,
    f64 => serialize_f64 as f64,
    char => serialize_char as char,
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<'a, S, T>(
    serializer: S,
    len: usize,
    items: impl Iterator<Item = &'a T>,
) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    T: Serialize + 'a,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in items {
        seq.serialize_element(item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, N, self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(2)?;
        tup.serialize_element(&self.0)?;
        tup.serialize_element(&self.1)?;
        tup.end()
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(3)?;
        tup.serialize_element(&self.0)?;
        tup.serialize_element(&self.1)?;
        tup.serialize_element(&self.2)?;
        tup.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
