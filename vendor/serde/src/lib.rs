//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of serde 1.x that the workspace actually uses: a **functional**
//! [`Serialize`] trait with the serde data model (structs, sequences, maps,
//! the four enum-variant shapes), implementations for the std types that
//! occur as field types in this workspace, and a real `#[derive(Serialize)]`
//! in `serde_derive`.  `Deserialize` remains a marker trait — nothing in the
//! workspace deserializes yet — so the derive annotations compile unchanged
//! and the real serde can be swapped back in from the workspace manifest
//! alone (call sites only use signatures that exist verbatim in serde 1.x).

pub mod ser;

pub use ser::{Serialize, Serializer};

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
