//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, and nothing in this
//! workspace serializes data yet: the `#[derive(Serialize, Deserialize)]`
//! annotations on the domain types declare intent for future tooling (JSON
//! experiment dumps, trace persistence).  This crate provides the two traits
//! as markers and re-exports no-op derives, so the annotations compile
//! unchanged and the real serde can be swapped back in from the workspace
//! manifest alone.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
