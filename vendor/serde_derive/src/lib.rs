//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this crate implements
//! `#[derive(Serialize)]` for real: it parses the item declaration (structs
//! with named, tuple or no fields; enums with unit, newtype, tuple and struct
//! variants) and generates a `serde::Serialize` impl that drives the serde
//! data model exactly as the real derive does, including `#[serde(skip)]` on
//! named struct fields.  `#[derive(Deserialize)]` still expands to a marker
//! impl — nothing in the workspace deserializes yet.
//!
//! The parser works on the stringified token stream.  That is deliberately
//! low-tech (no `syn` available offline), but it is written against the token
//! grammar, not source text: attributes and doc comments are stripped
//! string-literal-aware before any structural parsing, and every shape that
//! occurs in this workspace is covered by unit tests below.

use proc_macro::TokenStream;

// ---------------------------------------------------------------------------
// Lexing helpers (string-literal aware).
// ---------------------------------------------------------------------------

/// Marker injected where a `#[serde(skip)]` attribute was stripped; it is an
/// ordinary identifier so the downstream parser treats it as a token, and it
/// never survives into generated code.
const SKIP_MARKER: &str = "__serde_skip_marker__";

/// Advances `i` past a string literal starting at `i` (which must point at
/// `"`); handles escapes.
fn skip_string(chars: &[char], mut i: usize) -> usize {
    debug_assert_eq!(chars[i], '"');
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Advances past a raw string literal `r"..."` / `r#"..."#` whose `r` is at
/// `i - 1`; `i` points at the first `#` or `"`.
fn skip_raw_string(chars: &[char], mut i: usize) -> usize {
    let mut hashes = 0usize;
    while i < chars.len() && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= chars.len() || chars[i] != '"' {
        return i;
    }
    i += 1;
    while i < chars.len() {
        if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < chars.len() && chars[j] == '#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Removes every attribute (`#[...]` / `#![...]`) from `input`, replacing a
/// `#[serde(skip)]` attribute with [`SKIP_MARKER`] so field parsing can see
/// it.  String literals inside attributes (doc comments) are skipped
/// correctly.
fn strip_attributes(input: &str) -> String {
    let chars: Vec<char> = input.chars().collect();
    let mut out = String::with_capacity(input.len());
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '"' {
            let end = skip_string(&chars, i);
            out.extend(&chars[i..end]);
            i = end;
            continue;
        }
        if c == 'r' && i + 1 < chars.len() && (chars[i + 1] == '"' || chars[i + 1] == '#') {
            let end = skip_raw_string(&chars, i + 1);
            out.extend(&chars[i..end]);
            i = end;
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            // Line comment (doc comments survive stringification verbatim).
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            out.push(' ');
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.push(' ');
            continue;
        }
        if c == '#' {
            // Attribute: `#` [`!`] `[` ... `]`, brackets matched
            // string-literal-aware.
            let mut j = i + 1;
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            if j < chars.len() && chars[j] == '!' {
                j += 1;
                while j < chars.len() && chars[j].is_whitespace() {
                    j += 1;
                }
            }
            if j < chars.len() && chars[j] == '[' {
                // `structure` collects the attribute body *outside* string
                // literals, so doc-comment text can never look like a serde
                // attribute.
                let mut depth = 0usize;
                let mut k = j;
                let mut structure = String::new();
                while k < chars.len() {
                    let ck = chars[k];
                    if ck == '"' {
                        let end = skip_string(&chars, k);
                        structure.push('"');
                        k = end;
                        continue;
                    }
                    if ck == '[' {
                        depth += 1;
                        if depth == 1 {
                            k += 1;
                            continue;
                        }
                    } else if ck == ']' {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    structure.push(ck);
                    k += 1;
                }
                let squashed: String = structure.chars().filter(|c| !c.is_whitespace()).collect();
                // Exactly `#[serde(skip)]` — `skip_serializing_if` and
                // friends are conditional in real serde and must not be
                // treated as an unconditional skip.
                if squashed == "serde(skip)" {
                    out.push(' ');
                    out.push_str(SKIP_MARKER);
                }
                out.push(' ');
                i = k;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Splits `s` at top-level occurrences of `sep`, tracking `()[]{}<>` nesting
/// (`->` arrows and stray `>` never go negative thanks to saturation).
fn split_top_level(s: &str, sep: char) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '"' {
            let end = skip_string(&chars, i);
            current.extend(&chars[i..end]);
            i = end;
            continue;
        }
        match c {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' | '>' => depth = depth.saturating_sub(1),
            _ => {}
        }
        if c == sep && depth == 0 {
            parts.push(current.trim().to_string());
            current.clear();
        } else {
            current.push(c);
        }
        i += 1;
    }
    let tail = current.trim().to_string();
    if !tail.is_empty() {
        parts.push(tail);
    }
    parts
}

/// Finds the byte offset of the first top-level occurrence of any char in
/// `targets`, with the same nesting rules as [`split_top_level`].
fn find_top_level(s: &str, targets: &[char]) -> Option<usize> {
    let chars: Vec<char> = s.chars().collect();
    let mut depth = 0usize;
    let mut i = 0usize;
    let mut byte = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '"' {
            let end = skip_string(&chars, i);
            byte += chars[i..end].iter().map(|c| c.len_utf8()).sum::<usize>();
            i = end;
            continue;
        }
        if depth == 0 && targets.contains(&c) {
            return Some(byte);
        }
        match c {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' | '>' => depth = depth.saturating_sub(1),
            _ => {}
        }
        byte += c.len_utf8();
        i += 1;
    }
    None
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// The last identifier in `s` (used for "the token right before the `:`").
fn last_ident(s: &str) -> Option<String> {
    let trimmed = s.trim_end();
    let end = trimmed.len();
    let start = trimmed
        .rfind(|c: char| !is_ident_char(c))
        .map_or(0, |p| p + c_len(trimmed, p));
    let ident = &trimmed[start..end];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(ident.to_string())
    }
}

fn c_len(s: &str, byte_pos: usize) -> usize {
    s[byte_pos..].chars().next().map_or(1, char::len_utf8)
}

/// The first identifier in `s`.
fn first_ident(s: &str) -> Option<(String, usize)> {
    let mut start = None;
    for (i, c) in s.char_indices() {
        match (start, is_ident_char(c)) {
            (None, true) => start = Some(i),
            (Some(b), false) => return Some((s[b..i].to_string(), i)),
            _ => {}
        }
    }
    start.map(|b| (s[b..].to_string(), s.len()))
}

// ---------------------------------------------------------------------------
// Item parsing.
// ---------------------------------------------------------------------------

#[derive(Debug, PartialEq, Eq)]
enum Fields {
    Unit,
    /// Named fields in declaration order, with their skip flag.
    Named(Vec<(String, bool)>),
    /// Tuple fields: per-position skip flag.
    Tuple(Vec<bool>),
}

#[derive(Debug, PartialEq, Eq)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug, PartialEq, Eq)]
enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug, PartialEq, Eq)]
struct Item {
    name: String,
    generics: String,
    kind: ItemKind,
}

/// Consumes a leading visibility (`pub`, `pub(crate)`, ...) from `s`.
fn skip_visibility(s: &str) -> &str {
    let t = s.trim_start();
    if let Some(rest) = t.strip_prefix("pub") {
        if rest.chars().next().is_none_or(|c| !is_ident_char(c)) {
            let rest = rest.trim_start();
            if let Some(inner) = rest.strip_prefix('(') {
                // pub(crate) / pub(super) / pub(in path)
                let mut depth = 1usize;
                for (i, c) in inner.char_indices() {
                    match c {
                        '(' => depth += 1,
                        ')' => {
                            depth -= 1;
                            if depth == 0 {
                                return &inner[i + 1..];
                            }
                        }
                        _ => {}
                    }
                }
            }
            return rest;
        }
    }
    t
}

/// Parses one named-field chunk like `__serde_skip_marker__ pub foo : Vec<usize>`.
fn parse_named_field(chunk: &str) -> Option<(String, bool)> {
    let mut rest = chunk.trim();
    let mut skip = false;
    if let Some(after) = rest.strip_prefix(SKIP_MARKER) {
        skip = true;
        rest = after.trim_start();
    }
    let rest = skip_visibility(rest);
    // The field colon is the first top-level `:` that is not part of `::`.
    let chars: Vec<char> = rest.chars().collect();
    let mut depth = 0usize;
    let mut i = 0usize;
    let mut byte = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' | '>' => depth = depth.saturating_sub(1),
            ':' if depth == 0 => {
                let next_is_colon = chars.get(i + 1) == Some(&':');
                let prev_is_colon = i > 0 && chars[i - 1] == ':';
                if next_is_colon {
                    i += 2;
                    byte += 2;
                    continue;
                }
                if !prev_is_colon {
                    return last_ident(&rest[..byte]).map(|name| (name, skip));
                }
            }
            _ => {}
        }
        byte += c.len_utf8();
        i += 1;
    }
    None
}

fn parse_named_fields(body: &str) -> Vec<(String, bool)> {
    split_top_level(body, ',')
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .filter_map(|chunk| parse_named_field(chunk))
        .collect()
}

fn parse_tuple_fields(body: &str) -> Vec<bool> {
    split_top_level(body, ',')
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| chunk.trim_start().starts_with(SKIP_MARKER))
        .collect()
}

fn parse_variant(chunk: &str) -> Option<Variant> {
    let rest = chunk.trim();
    let rest = rest.strip_prefix(SKIP_MARKER).unwrap_or(rest).trim_start();
    let (name, after) = first_ident(rest)?;
    let payload = rest[after..].trim();
    let fields = if payload.is_empty() {
        Fields::Unit
    } else if let Some(inner) = payload.strip_prefix('(') {
        let inner = inner.strip_suffix(')')?;
        Fields::Tuple(parse_tuple_fields(inner))
    } else if let Some(inner) = payload.strip_prefix('{') {
        let inner = inner.strip_suffix('}')?;
        Fields::Named(parse_named_fields(inner))
    } else {
        // Explicit discriminant (`= expr`) — not used in this workspace.
        return None;
    };
    Some(Variant { name, fields })
}

/// Parses a struct/enum declaration (attributes must already be stripped
/// except for the injected skip markers).
fn parse_item(clean: &str) -> Option<Item> {
    let rest = skip_visibility(clean);
    let (kw, rest) = if let Some(r) = rest.trim_start().strip_prefix("struct") {
        ("struct", r)
    } else if let Some(r) = rest.trim_start().strip_prefix("enum") {
        ("enum", r)
    } else {
        return None;
    };
    let rest = rest.trim_start();
    let (name, after) = first_ident(rest)?;
    let mut rest = rest[after..].trim_start();
    let mut generics = String::new();
    if rest.starts_with('<') {
        let chars: Vec<char> = rest.chars().collect();
        let mut depth = 0usize;
        let mut end = 0usize;
        for (i, c) in chars.iter().enumerate() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        generics = chars[..end].iter().collect();
        let byte_end: usize = chars[..end].iter().map(|c| c.len_utf8()).sum();
        rest = rest[byte_end..].trim_start();
    }
    let kind = if kw == "struct" {
        if rest.starts_with(';') || rest.is_empty() {
            ItemKind::Struct(Fields::Unit)
        } else if let Some(inner) = rest.strip_prefix('{') {
            let inner = inner.trim_end().strip_suffix('}')?;
            ItemKind::Struct(Fields::Named(parse_named_fields(inner)))
        } else if let Some(inner) = rest.strip_prefix('(') {
            let close = find_top_level(inner, &[')'])?;
            ItemKind::Struct(Fields::Tuple(parse_tuple_fields(&inner[..close])))
        } else {
            return None;
        }
    } else {
        let inner = rest.strip_prefix('{')?;
        let inner = inner.trim_end().strip_suffix('}')?;
        let variants = split_top_level(inner, ',')
            .iter()
            .filter(|chunk| !chunk.is_empty())
            .map(|chunk| parse_variant(chunk))
            .collect::<Option<Vec<_>>>()?;
        ItemKind::Enum(variants)
    };
    Some(Item {
        name,
        generics,
        kind,
    })
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

/// Strips bounds from a generics list: `<T: Clone, 'a>` -> `<T, 'a>`.
fn ty_generics(generics: &str) -> String {
    if generics.is_empty() {
        return String::new();
    }
    let inner = &generics[1..generics.len() - 1];
    let names: Vec<String> = split_top_level(inner, ',')
        .iter()
        .map(|p| p.split(':').next().unwrap_or("").trim().to_string())
        .filter(|p| !p.is_empty())
        .collect();
    format!("<{}>", names.join(", "))
}

/// Type parameters (not lifetimes) of a generics list.
fn type_params(generics: &str) -> Vec<String> {
    if generics.is_empty() {
        return Vec::new();
    }
    let inner = &generics[1..generics.len() - 1];
    split_top_level(inner, ',')
        .iter()
        .map(|p| p.split(':').next().unwrap_or("").trim().to_string())
        .filter(|p| !p.is_empty() && !p.starts_with('\'') && !p.starts_with("const "))
        .collect()
}

fn serialize_impl(item: &Item) -> String {
    let name = &item.name;
    let ty = ty_generics(&item.generics);
    let bounds: Vec<String> = type_params(&item.generics)
        .iter()
        .map(|p| format!("{p}: ::serde::Serialize"))
        .collect();
    let where_clause = if bounds.is_empty() {
        String::new()
    } else {
        format!("where {}", bounds.join(", "))
    };
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => {
            format!("::serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        ItemKind::Struct(Fields::Named(fields)) => {
            let live: Vec<&(String, bool)> = fields.iter().filter(|(_, skip)| !skip).collect();
            let mut code = format!(
                "let mut __state = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {}usize)?;\n",
                live.len()
            );
            for (field, _) in &live {
                code.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{field}\", &self.{field})?;\n"
                ));
            }
            code.push_str("::serde::ser::SerializeStruct::end(__state)");
            code
        }
        ItemKind::Struct(Fields::Tuple(skips)) => {
            if skips.len() == 1 && !skips[0] {
                format!(
                    "::serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
                )
            } else {
                let live: Vec<usize> = (0..skips.len()).filter(|&i| !skips[i]).collect();
                let mut code = format!(
                    "let mut __state = ::serde::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {}usize)?;\n",
                    live.len()
                );
                for i in &live {
                    code.push_str(&format!(
                        "::serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{i})?;\n"
                    ));
                }
                code.push_str("::serde::ser::SerializeTupleStruct::end(__state)");
                code
            }
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for (idx, variant) in variants.iter().enumerate() {
                let vname = &variant.name;
                match &variant.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                        ));
                    }
                    Fields::Tuple(skips) if skips.len() == 1 => {
                        arms.push_str(&format!(
                            "{name}::{vname}(__f0) => ::serde::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                        ));
                    }
                    Fields::Tuple(skips) => {
                        let binders: Vec<String> =
                            (0..skips.len()).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\nlet mut __state = ::serde::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {}usize)?;\n",
                            binders.join(", "),
                            skips.len()
                        );
                        for b in &binders {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __state, {b})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeTupleVariant::end(__state)\n}\n");
                        arms.push_str(&arm);
                    }
                    Fields::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|(f, _)| f.as_str()).collect();
                        let live: Vec<&str> = fields
                            .iter()
                            .filter(|(_, skip)| !skip)
                            .map(|(f, _)| f.as_str())
                            .collect();
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut __state = ::serde::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {}usize)?;\n",
                            binders.join(", "),
                            live.len()
                        );
                        for f in &live {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __state, \"{f}\", {f})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeStructVariant::end(__state)\n}\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Serialize for {name}{ty} {where_clause} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\n\
         }}\n\
         }}",
        generics = item.generics,
    )
}

/// Real `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let text = input.to_string();
    let clean = strip_attributes(&text);
    let Some(item) = parse_item(&clean) else {
        panic!("serde_derive (offline stand-in): could not parse item for Serialize: {clean}");
    };
    serialize_impl(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// No-op `Deserialize` derive: emits a marker impl (nothing in the workspace
/// deserializes yet).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let text = input.to_string();
    let clean = strip_attributes(&text);
    let Some(item) = parse_item(&clean) else {
        panic!("serde_derive (offline stand-in): could not parse item for Deserialize: {clean}");
    };
    let ty = ty_generics(&item.generics);
    let impl_generics = if item.generics.is_empty() {
        "<'de>".to_string()
    } else {
        format!("<'de, {}", &item.generics[1..])
    };
    format!(
        "#[automatically_derived]\nimpl{impl_generics} ::serde::Deserialize<'de> for {}{ty} {{}}",
        item.name
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_doc_attributes_with_tricky_contents() {
        let cleaned = strip_attributes(
            "# [doc = \" a struct, with } and ] and \\\" inside\"] pub struct Foo { a : usize }",
        );
        assert!(!cleaned.contains("doc"));
        assert!(cleaned.contains("struct Foo"));
    }

    #[test]
    fn skip_marker_is_injected() {
        let cleaned = strip_attributes("struct F { # [serde (skip)] wall : u64 , n : usize }");
        assert!(cleaned.contains(SKIP_MARKER));
        let item = parse_item(&cleaned).unwrap();
        assert_eq!(
            item.kind,
            ItemKind::Struct(Fields::Named(vec![
                ("wall".into(), true),
                ("n".into(), false)
            ]))
        );
    }

    #[test]
    fn skip_marker_requires_an_exact_serde_skip_attribute() {
        // A doc comment *mentioning* serde(skip) must not skip the field.
        let cleaned = strip_attributes(
            "struct F { # [doc = \" mirrors serde(skip) behavior\"] wall : u64 , n : usize }",
        );
        assert!(!cleaned.contains(SKIP_MARKER));
        // `skip_serializing_if` is conditional in real serde — not a skip.
        let cleaned = strip_attributes(
            "struct F { # [serde (skip_serializing_if = \"Option::is_none\")] a : Option < u64 > }",
        );
        assert!(!cleaned.contains(SKIP_MARKER));
    }

    #[test]
    fn parses_named_struct() {
        let item =
            parse_item("pub struct Rec { pub n : usize , pub gaps : Vec < usize > , }").unwrap();
        assert_eq!(item.name, "Rec");
        assert_eq!(
            item.kind,
            ItemKind::Struct(Fields::Named(vec![
                ("n".into(), false),
                ("gaps".into(), false)
            ]))
        );
    }

    #[test]
    fn parses_field_with_qualified_path_type() {
        let item =
            parse_item("struct P { inner : std :: collections :: BTreeMap < String , usize > }")
                .unwrap();
        assert_eq!(
            item.kind,
            ItemKind::Struct(Fields::Named(vec![("inner".into(), false)]))
        );
    }

    #[test]
    fn parses_enum_with_all_variant_shapes() {
        let item = parse_item(
            "pub enum E { Unit , New (usize) , Tup (usize , String) , Str { a : bool , b : Vec < (usize , usize) > } }",
        )
        .unwrap();
        let ItemKind::Enum(variants) = item.kind else {
            panic!("expected enum");
        };
        assert_eq!(variants.len(), 4);
        assert_eq!(variants[0].fields, Fields::Unit);
        assert_eq!(variants[1].fields, Fields::Tuple(vec![false]));
        assert_eq!(variants[2].fields, Fields::Tuple(vec![false, false]));
        assert_eq!(
            variants[3].fields,
            Fields::Named(vec![("a".into(), false), ("b".into(), false)])
        );
    }

    #[test]
    fn parses_generic_struct() {
        let item = parse_item("pub struct W < T : Clone , 'a > { v : & 'a T }").unwrap();
        assert_eq!(ty_generics(&item.generics), "<T, 'a>");
        assert_eq!(type_params(&item.generics), vec!["T".to_string()]);
    }

    #[test]
    fn generated_struct_impl_mentions_every_live_field() {
        let item = parse_item(&strip_attributes(
            "pub struct R { n : usize , # [serde (skip)] wall : u64 , ok : bool }",
        ))
        .unwrap();
        let code = serialize_impl(&item);
        assert!(code.contains("serialize_struct(__serializer, \"R\", 2usize)"));
        assert!(code.contains("\"n\""));
        assert!(code.contains("\"ok\""));
        assert!(!code.contains("\"wall\""));
    }

    #[test]
    fn generated_enum_impl_uses_variant_indices() {
        let item = parse_item("enum E { A , B (usize) }").unwrap();
        let code = serialize_impl(&item);
        assert!(code.contains("serialize_unit_variant(__serializer, \"E\", 0u32, \"A\")"));
        assert!(code.contains("serialize_newtype_variant(__serializer, \"E\", 1u32, \"B\", __f0)"));
    }
}
