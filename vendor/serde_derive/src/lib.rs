//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace actually serializes data yet — the `#[derive(Serialize,
//! Deserialize)]` annotations only declare intent for future tooling.  These
//! derives therefore expand to marker-trait impls and nothing else.  Swapping
//! the real serde back in is a two-line change in the workspace manifest.

use proc_macro::TokenStream;

/// Extracts the type name and a usable impl-generics / ty-generics split from
/// the item the derive is attached to.
///
/// This is a deliberately small parser: it handles the `struct Name<...>` /
/// `enum Name<...>` shapes that occur in this workspace (plain named generics
/// and lifetimes, no const generics, no defaults with nested angle brackets
/// beyond one level).
fn parse_name_and_generics(input: &str) -> Option<(String, String)> {
    let mut rest = input;
    // Skip attributes and doc comments conservatively: find the first
    // `struct` or `enum` keyword at a word boundary.
    let kw_pos = ["struct ", "enum "]
        .iter()
        .filter_map(|kw| rest.find(kw).map(|p| p + kw.len()))
        .min()?;
    rest = &rest[kw_pos..];
    let rest = rest.trim_start();
    let name_end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    let name = rest[..name_end].to_string();
    if name.is_empty() {
        return None;
    }
    let after = rest[name_end..].trim_start();
    let generics = if after.starts_with('<') {
        let mut depth = 0usize;
        let mut end = 0usize;
        for (i, c) in after.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        after[..end].to_string()
    } else {
        String::new()
    };
    Some((name, generics))
}

/// Strips bounds from a generics list: `<T: Clone, 'a>` -> `<T, 'a>`.
fn ty_generics(generics: &str) -> String {
    if generics.is_empty() {
        return String::new();
    }
    let inner = &generics[1..generics.len() - 1];
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                params.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    params.push(&inner[start..]);
    let names: Vec<String> = params
        .iter()
        .map(|p| p.split(':').next().unwrap_or("").trim().to_string())
        .filter(|p| !p.is_empty())
        .collect();
    format!("<{}>", names.join(", "))
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let text = input.to_string();
    let Some((name, generics)) = parse_name_and_generics(&text) else {
        return TokenStream::new();
    };
    let ty = ty_generics(&generics);
    let (impl_generics, where_de) = if trait_path.contains("Deserialize") {
        // Add the deserializer lifetime to the impl generics.
        if generics.is_empty() {
            ("<'de>".to_string(), String::new())
        } else {
            (format!("<'de, {}", &generics[1..]), String::new())
        }
    } else {
        (generics.clone(), String::new())
    };
    let lifetime = if trait_path.contains("Deserialize") {
        "<'de>"
    } else {
        ""
    };
    let code = format!("impl{impl_generics} {trait_path}{lifetime} for {name}{ty} {where_de} {{}}");
    code.parse().unwrap_or_default()
}

/// No-op `Serialize` derive: emits a marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// No-op `Deserialize` derive: emits a marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize")
}
