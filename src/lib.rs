//! # ring-robots
//!
//! A full reproduction, as a Rust library, of
//! *"A unified approach for different tasks on rings in robot-based computing
//! systems"* (G. D'Angelo, G. Di Stefano, A. Navarra, N. Nisse, K. Suchan —
//! IPPS 2013 / INRIA research report RR-8013).
//!
//! The paper gives Look–Compute–Move algorithms, in the minimalist CORDA
//! model, that solve three classical tasks on anonymous unoriented rings
//! starting from any rigid (asymmetric and aperiodic) exclusive
//! configuration:
//!
//! * **exclusive perpetual exploration** — every robot visits every node
//!   infinitely often, with at most one robot per node;
//! * **exclusive perpetual graph searching** — the robots clear all edges of
//!   the (continuously recontaminating) ring infinitely often;
//! * **gathering** — all robots end up on one node, using only local
//!   multiplicity detection.
//!
//! This crate is a façade over the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`ring`] (`rr-ring`) | anonymous ring, configurations, views, supermin, symmetry, enumeration |
//! | [`corda`] (`rr-corda`) | the Look–Compute–Move [`Engine`](corda::Engine), snapshots, schedulers (FSYNC/SSYNC/ASYNC/adversarial), composable monitors |
//! | [`search`] (`rr-search`) | contamination / exploration / gathering monitors |
//! | [`core`] (`rr-core`) | the paper's algorithms: Align, Ring Clearing, NminusThree, Gathering, feasibility |
//! | [`checker`] (`rr-checker`) | configuration graphs, impossibility checks, protocol-synthesis search, characterization |
//!
//! ## Quick start
//!
//! ```
//! use ring_robots::prelude::*;
//!
//! // 5 robots on a 12-node ring, a rigid starting configuration.
//! let start = Configuration::from_gaps_at_origin(&[0, 2, 1, 0, 4]);
//! assert!(ring_robots::ring::symmetry::is_rigid(&start));
//!
//! // Ask the unified dispatcher for the algorithm that clears this ring ...
//! let protocol = protocol_for(Task::GraphSearching, start.n(), start.num_robots()).unwrap();
//!
//! // ... and run it under a sequential scheduler until the ring has been
//! // cleared three times and every robot has explored every node once.
//! let mut scheduler = RoundRobinScheduler::new();
//! let stats = run_searching(protocol, &start, &mut scheduler, 3, 1, 200_000).unwrap();
//! assert!(stats.clearings >= 3);
//! assert!(stats.min_exploration_completions >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rr_checker as checker;
pub use rr_corda as corda;
pub use rr_core as core;
pub use rr_ring as ring;
pub use rr_search as search;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use rr_checker::{build_characterization, verify_gathering, verify_searching};
    pub use rr_corda::scheduler::{
        AsynchronousScheduler, FullySynchronousScheduler, RoundRobinScheduler,
        SemiSynchronousScheduler,
    };
    pub use rr_corda::{
        Decision, Engine, EngineOptions, LookPath, Monitor, MultiplicityCapability, Protocol,
        Scheduler, SchedulerStep, Snapshot, StepReport, TraceMode, ViewIndex,
    };
    pub use rr_core::align::{run_to_c_star, AlignProtocol};
    pub use rr_core::clearing::{run_searching, RingClearingProtocol};
    pub use rr_core::driver::{drive, run_dispatched, run_task, TaskTargets};
    pub use rr_core::feasibility::{searching_feasibility, Feasibility};
    pub use rr_core::gathering::{run_gathering, GatheringProtocol};
    pub use rr_core::nminus_three::NminusThreeProtocol;
    pub use rr_core::unified::{protocol_for, Task};
    pub use rr_ring::{Configuration, Direction, Ring, View};
    pub use rr_search::{Contamination, ExplorationTracker, GatheringMonitor, SearchMonitors};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_main_flow() {
        let start = Configuration::from_gaps_at_origin(&[0, 0, 0, 1, 6]);
        let protocol = protocol_for(Task::GraphSearching, 12, 5).unwrap();
        let mut scheduler = RoundRobinScheduler::new();
        let stats = run_searching(protocol, &start, &mut scheduler, 2, 0, 50_000).unwrap();
        assert!(stats.clearings >= 2);
    }

    #[test]
    fn feasibility_is_reachable_through_the_facade() {
        assert!(searching_feasibility(12, 5).is_solvable());
        assert!(searching_feasibility(9, 4).is_impossible());
    }
}
